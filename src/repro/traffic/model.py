"""TrafficModel — one pluggable (destinations, arrivals) pair — and
the record → replay trace round-trip.

A :class:`TrafficModel` is what :class:`~repro.core.cluster.
ClusterSpec` carries (``spec.traffic``) and what the kernels and the
cycle-accurate switch driver consume: the destination distribution
shapes *who* messages are for, the arrival process shapes *when*
open-loop drivers offer them.  ``None``/default means what the repo
always did — uniform destinations, closed-loop pacing — and every
kernel's legacy code path is byte-for-byte untouched in that case (the
committed goldens prove it).

Recording and replay close the loop with production: :func:`record`
samples a model once into a :class:`Trace` (plain tuples, JSON
round-trippable), and :func:`replay_model` wraps that trace back into
a model whose draws reproduce the recorded schedule *exactly* — the
property test the arrivals suite pins.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.sim.rng import rng_for
from repro.traffic.arrivals import (ArrivalProcess, ClosedLoop,
                                    TraceArrivals, make_arrivals)
from repro.traffic.distributions import (Distribution, TraceReplay,
                                         Uniform, make_distribution)

__all__ = ["TrafficModel", "Trace", "record", "replay_model",
           "model_from_names"]


@dataclass(frozen=True)
class TrafficModel:
    """One production-shaped load: a destination distribution plus an
    arrival process, both seeded and deterministic."""

    dist: Distribution = field(default_factory=Uniform)
    arrivals: ArrivalProcess = field(default_factory=ClosedLoop)

    def label(self) -> str:
        return f"{self.dist.label()}/{self.arrivals.label()}"

    # ------------------------------------------------------ sampling ---

    def rng(self, seed: int, *path) -> np.random.Generator:
        """The model's derived stream for one component/source."""
        return rng_for(seed, "traffic", *path)

    def destinations(self, seed: int, n: int, n_dests: int,
                     src: int = 0) -> np.ndarray:
        """``n`` seeded destination draws for one source."""
        return self.dist.draw(self.rng(seed, "dest", src), n, n_dests,
                              src=src)

    def arrival_times(self, seed: int, n: int, src: int = 0
                      ) -> np.ndarray:
        """``n`` seeded arrival times for one source (open loop only)."""
        return self.arrivals.times(self.rng(seed, "arrive", src), n)


@dataclass(frozen=True)
class Trace:
    """A recorded (time, destination) schedule for one source.

    Plain tuples of primitives: JSON round-trippable, hashable,
    picklable, cache-canonicalisable.
    """

    times: Tuple[float, ...]
    destinations: Tuple[int, ...]
    n_dests: int
    source: int = 0

    def __post_init__(self) -> None:
        if len(self.times) != len(self.destinations):
            raise ValueError("times and destinations must pair up")

    def __len__(self) -> int:
        return len(self.times)

    def to_json(self) -> str:
        return json.dumps({
            "times": list(self.times),
            "destinations": list(self.destinations),
            "n_dests": self.n_dests,
            "source": self.source,
        })

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        d: Dict = json.loads(text)
        return cls(times=tuple(float(t) for t in d["times"]),
                   destinations=tuple(int(x)
                                      for x in d["destinations"]),
                   n_dests=int(d["n_dests"]),
                   source=int(d.get("source", 0)))


def record(model: TrafficModel, *, seed: int, n: int, n_dests: int,
           src: int = 0) -> Trace:
    """Sample ``n`` (time, destination) events from an open-loop model
    into a replayable :class:`Trace`."""
    if not model.arrivals.open_loop:
        raise TypeError("recording needs an open-loop arrival process "
                        "(closed-loop kernels have no schedule to "
                        "record)")
    times = model.arrival_times(seed, n, src=src)
    dests = model.destinations(seed, n, n_dests, src=src)
    return Trace(times=tuple(float(t) for t in times),
                 destinations=tuple(int(d) for d in dests),
                 n_dests=n_dests, source=src)


def replay_model(trace: Trace) -> TrafficModel:
    """The model that reproduces ``trace`` exactly on every draw."""
    return TrafficModel(
        dist=TraceReplay(destinations=trace.destinations),
        arrivals=TraceArrivals(schedule=trace.times))


def model_from_names(dist: str = "uniform",
                     dist_params: Optional[Dict[str, object]] = None,
                     arrivals: str = "closed",
                     arrival_params: Optional[Dict[str, object]] = None
                     ) -> TrafficModel:
    """Build a model from registry names + kwargs (the primitive form
    experiment points carry through pool workers and result caches)."""
    return TrafficModel(
        dist=make_distribution(dist, **(dist_params or {})),
        arrivals=make_arrivals(arrivals, **(arrival_params or {})))
