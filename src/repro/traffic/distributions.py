"""Destination distributions: who a packet is for.

The paper asks where the Data Vortex's deflection fabric beats
InfiniBand on traffic that cannot be aggregated *by destination*; every
kernel so far has asked that question under uniform-random destinations
only.  Real services with millions of users are nothing like uniform —
popularity is Zipfian, caches concentrate on hot sets, and replayed
production schedules have arbitrary shapes.  This module is the
destination half of the traffic taxonomy (the GUPS Hotset/Zipf/Random
family of the Demeter workload generator, grown into a pluggable layer):

* :class:`Uniform` — every destination equally likely (the seed repo's
  implicit model, now explicit);
* :class:`Hotset` — a fixed fraction of the destination space absorbs a
  fixed (larger) fraction of the traffic;
* :class:`Zipf` — destination ``k`` drawn with probability proportional
  to ``1 / (k+1)**exponent`` (``exponent == 0`` degenerates to
  uniform), the classic power-law popularity curve with a sweepable
  exponent;
* :class:`TraceReplay` — replays a recorded destination schedule
  verbatim (see :mod:`repro.traffic.model` for record/replay).

Every distribution is a **frozen dataclass of primitives**: hashable,
picklable into pool workers, and canonicalisable by the exec result
cache.  Draws are fully vectorised and consume only the generator they
are handed, so a seeded run is bit-identical across processes.  Each
distribution also exposes its exact :meth:`~Distribution.pmf`, which
the statistical validation suite (:mod:`repro.traffic.validate`) tests
samples against — a generator whose draws do not match its own pmf is
a bug the property tests are built to catch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

__all__ = [
    "Distribution", "Uniform", "Hotset", "Zipf", "TraceReplay",
    "DISTRIBUTIONS", "make_distribution",
]


@dataclass(frozen=True)
class Distribution:
    """Base destination distribution over ``n_dests`` destinations.

    Subclasses implement :meth:`pmf`; :meth:`draw` is the shared
    inverse-CDF sampler (one ``rng.random(n)`` batch, one
    ``searchsorted``), so every concrete distribution draws through the
    same deterministic code path.
    """

    #: short registry name ("uniform", "hotset", "zipf", "trace")
    name = "base"

    def pmf(self, n_dests: int) -> np.ndarray:
        """Exact probability of each destination (sums to 1)."""
        raise NotImplementedError

    def draw(self, rng: np.random.Generator, n: int, n_dests: int,
             src: Optional[int] = None) -> np.ndarray:
        """``n`` destination draws in ``[0, n_dests)`` (int64).

        ``src`` is accepted for source-aware patterns (trace replay
        keys its schedule on it); the stochastic distributions ignore
        it.
        """
        if n_dests < 1:
            raise ValueError("n_dests must be >= 1")
        cdf = np.cumsum(self.pmf(n_dests))
        cdf[-1] = 1.0  # guard the last bin against rounding
        return np.searchsorted(cdf, rng.random(n),
                               side="right").astype(np.int64)

    @property
    def params(self) -> Dict[str, object]:
        """The constructor kwargs (for labels, caching, round-trips)."""
        return {f: getattr(self, f)
                for f in getattr(self, "__dataclass_fields__", {})}

    def label(self) -> str:
        """Human label for tables, e.g. ``zipf(s=1.2)``."""
        inner = ",".join(f"{k}={v}" for k, v in self.params.items())
        return f"{self.name}({inner})" if inner else self.name


@dataclass(frozen=True)
class Uniform(Distribution):
    """Every destination equally likely."""

    name = "uniform"

    def pmf(self, n_dests: int) -> np.ndarray:
        return np.full(n_dests, 1.0 / n_dests)

    def draw(self, rng: np.random.Generator, n: int, n_dests: int,
             src: Optional[int] = None) -> np.ndarray:
        if n_dests < 1:
            raise ValueError("n_dests must be >= 1")
        return rng.integers(0, n_dests, n, dtype=np.int64)


@dataclass(frozen=True)
class Hotset(Distribution):
    """``hot_mass`` of the traffic aims at the first
    ``hot_fraction`` of the destination space; the rest is uniform
    over the cold remainder.

    ``hot_fraction=0.1, hot_mass=0.9`` is the classic 90/10 cache
    shape.  With ``hot_mass == hot_fraction`` the distribution
    degenerates to uniform.
    """

    name = "hotset"

    hot_fraction: float = 0.1
    hot_mass: float = 0.9

    def __post_init__(self) -> None:
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in (0, 1]")
        if not 0.0 <= self.hot_mass <= 1.0:
            raise ValueError("hot_mass must be in [0, 1]")

    def hot_count(self, n_dests: int) -> int:
        """Size of the hot set (at least one destination)."""
        return max(1, int(round(self.hot_fraction * n_dests)))

    def pmf(self, n_dests: int) -> np.ndarray:
        hot_n = min(self.hot_count(n_dests), n_dests)
        p = np.empty(n_dests)
        p[:hot_n] = self.hot_mass / hot_n
        if hot_n < n_dests:
            p[hot_n:] = (1.0 - self.hot_mass) / (n_dests - hot_n)
        else:
            p[:] = 1.0 / n_dests
        return p / p.sum()


@dataclass(frozen=True)
class Zipf(Distribution):
    """Power-law popularity: ``P(k) ∝ 1 / (k+1)**exponent``.

    Destination 0 is the hottest; ``exponent == 0`` is uniform and the
    skew concentrates as the exponent grows (at ``exponent ≈ 1`` the
    head holds a log share, by 2 the top destination dominates).  The
    identity rank→destination mapping is deliberate: experiments sweep
    the exponent, and keeping destination 0 hottest makes hotspot
    placement reproducible and legible in traces.
    """

    name = "zipf"

    exponent: float = 1.2

    def __post_init__(self) -> None:
        if self.exponent < 0.0:
            raise ValueError("exponent must be >= 0")

    def pmf(self, n_dests: int) -> np.ndarray:
        w = (np.arange(1, n_dests + 1, dtype=np.float64)
             ** -float(self.exponent))
        return w / w.sum()


@dataclass(frozen=True)
class TraceReplay(Distribution):
    """Replays a recorded destination schedule verbatim.

    ``draw`` hands back the recorded sequence in order (tiled when the
    request outruns the recording), ignoring the generator entirely —
    replay must not perturb any RNG stream.  The pmf is the recording's
    empirical frequency (what a goodness-of-fit test of the replay
    *should* match exactly).
    """

    name = "trace"

    destinations: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.destinations:
            raise ValueError("trace replay needs a non-empty schedule")

    def pmf(self, n_dests: int) -> np.ndarray:
        counts = np.bincount(np.asarray(self.destinations, np.int64),
                             minlength=n_dests).astype(np.float64)
        return counts / counts.sum()

    def draw(self, rng: np.random.Generator, n: int, n_dests: int,
             src: Optional[int] = None) -> np.ndarray:
        rec = np.asarray(self.destinations, np.int64)
        if rec.max() >= n_dests:
            raise ValueError(
                f"trace destination {int(rec.max())} out of range for "
                f"{n_dests} destinations")
        reps = -(-n // rec.size)  # ceil
        return np.tile(rec, reps)[:n]


#: Registry of constructible distributions by name.
DISTRIBUTIONS: Dict[str, Callable[..., Distribution]] = {
    "uniform": Uniform,
    "hotset": Hotset,
    "zipf": Zipf,
    "trace": TraceReplay,
}


def make_distribution(name: str, **params: object) -> Distribution:
    """Build a distribution from its registry name + kwargs.

    The inverse of :attr:`Distribution.params` — experiment points
    carry ``(name, params)`` primitives through the exec cache and
    rebuild the distribution inside the (possibly pooled) worker.
    """
    if name not in DISTRIBUTIONS:
        raise KeyError(f"unknown distribution {name!r}; known: "
                       f"{', '.join(sorted(DISTRIBUTIONS))}")
    return DISTRIBUTIONS[name](**params)
