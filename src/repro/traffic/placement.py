"""Skew-aware vertex placement: traffic shaping for graph kernels.

GUPS picks its destinations directly, so a destination distribution
plugs straight into its index generator.  BFS traffic, by contrast, is
*derived*: a message goes to ``owner(child) = child // block``, so the
only lever is **where vertices live**.  This module turns a destination
distribution into a block-respecting relabelling: high-degree (hub)
vertices are packed into the blocks of hot ranks so that each rank's
share of total degree — and therefore of incoming (child, parent)
traffic — tracks the distribution's pmf as closely as block capacity
allows.

The assignment is a deterministic greedy water-fill: vertices in
descending degree order each go to the rank with the largest remaining
degree deficit (pmf·total_degree − degree already placed) among ranks
with block slots free.  No RNG is consumed, so installing a traffic
model cannot perturb any other seeded stream.
"""

from __future__ import annotations

import numpy as np

from repro.traffic.distributions import Distribution, Uniform

__all__ = ["skewed_relabel", "rank_degree_share"]


def skewed_relabel(deg: np.ndarray, n_ranks: int,
                   dist: Distribution) -> np.ndarray:
    """Relabelling ``new_id = relabel[old_id]`` that skews per-rank
    degree mass toward ``dist``'s pmf under block distribution.

    Rank ``r`` owns new ids ``[r*block, (r+1)*block)`` with
    ``block = ceil(n / n_ranks)`` — exactly the partition the BFS
    kernels assume — and receives (capacity permitting) a share of the
    total degree proportional to ``dist.pmf(n_ranks)[r]``.  A uniform
    distribution short-circuits to the identity relabelling.
    """
    deg = np.asarray(deg, np.int64)
    n = deg.size
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    if isinstance(dist, Uniform) or n_ranks == 1:
        return np.arange(n, dtype=np.int64)
    block = (n + n_ranks - 1) // n_ranks
    pmf = dist.pmf(n_ranks)
    target = pmf * float(deg.sum())
    placed = np.zeros(n_ranks)
    slots = np.full(n_ranks, block, np.int64)
    slots[-1] = n - block * (n_ranks - 1)
    if slots[-1] < 0:
        raise ValueError("n_ranks exceeds vertex count")
    owner = np.empty(n, np.int64)
    for v in np.argsort(-deg, kind="stable"):
        deficit = np.where(slots > 0, target - placed, -np.inf)
        r = int(np.argmax(deficit))
        owner[v] = r
        placed[r] += deg[v]
        slots[r] -= 1
    # ranks fill their blocks exactly, so a stable sort by owner lands
    # each rank's vertices on consecutive new ids inside its block
    relabel = np.empty(n, np.int64)
    relabel[np.argsort(owner, kind="stable")] = np.arange(n)
    return relabel


def rank_degree_share(deg: np.ndarray, relabel: np.ndarray,
                      n_ranks: int) -> np.ndarray:
    """Each rank's fraction of total degree after relabelling (the
    quantity :func:`skewed_relabel` shapes; tests compare it against
    the distribution's pmf)."""
    deg = np.asarray(deg, np.int64)
    n = deg.size
    block = (n + n_ranks - 1) // n_ranks
    share = np.zeros(n_ranks)
    np.add.at(share, relabel // block, deg.astype(np.float64))
    return share / share.sum()
