"""Production-shaped traffic models and their statistical validation.

The pluggable traffic-distribution layer ROADMAP open item 1 calls for:
destination distributions (uniform / hotset / Zipf with a sweepable
exponent / trace replay), arrival processes (closed-loop, open-loop
Poisson, bursty MMPP on/off, trace replay), the
:class:`~repro.traffic.model.TrafficModel` that
:class:`~repro.core.cluster.ClusterSpec` carries into GUPS, BFS and
the cycle-accurate switch driver, the skew-aware vertex placement that
shapes graph-kernel traffic, the ``fig_skew`` experiment, and the
statistical suite (chi-squared / KS / Zipf-slope / CV / Gini) that
keeps every generator honest.  See docs/traffic.md.
"""

from repro.traffic.arrivals import (ARRIVALS, MMPP, ArrivalProcess,
                                    ClosedLoop, Poisson, TraceArrivals,
                                    make_arrivals)
from repro.traffic.distributions import (DISTRIBUTIONS, Distribution,
                                         Hotset, TraceReplay, Uniform,
                                         Zipf, make_distribution)
from repro.traffic.experiments import (SKEW_EXPONENTS, skew_levels,
                                       skew_point, skew_table)
from repro.traffic.model import (Trace, TrafficModel, model_from_names,
                                 record, replay_model)
from repro.traffic.placement import rank_degree_share, skewed_relabel
from repro.traffic.validate import (chi_squared, coefficient_of_variation,
                                    destination_counts, gini,
                                    ks_exponential, zipf_slope)

__all__ = [
    "ARRIVALS", "DISTRIBUTIONS", "SKEW_EXPONENTS",
    "ArrivalProcess", "ClosedLoop", "Poisson", "MMPP", "TraceArrivals",
    "Distribution", "Uniform", "Hotset", "Zipf", "TraceReplay",
    "Trace", "TrafficModel",
    "chi_squared", "coefficient_of_variation", "destination_counts",
    "gini", "ks_exponential", "zipf_slope",
    "make_arrivals", "make_distribution", "model_from_names",
    "rank_degree_share", "record", "replay_model",
    "skew_levels", "skew_point", "skew_table", "skewed_relabel",
]
