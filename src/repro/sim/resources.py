"""Counted resources with FIFO admission.

A :class:`Resource` models a device with ``capacity`` independent service
slots (e.g. a pair of DMA engines, a PCIe bus treated as a single shared
channel).  Acquire with :meth:`Resource.acquire`, release with
:meth:`Resource.release`, or use the :meth:`Resource.using` helper from
inside a process for exception-safe bracketing.
"""

from __future__ import annotations

import collections
from contextlib import contextmanager
from typing import TYPE_CHECKING, Deque, Iterator

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


class Resource:
    """FIFO counted resource.

    Parameters
    ----------
    engine:
        Owning engine.
    capacity:
        Number of concurrent holders allowed (>= 1).
    """

    def __init__(self, engine: "Engine", capacity: int = 1,
                 name: str = "") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = collections.deque()

    @property
    def in_use(self) -> int:
        """Number of slots currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of pending acquisitions."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Request a slot; the returned event succeeds when granted."""
        ev = Event(self.engine, name=f"{self.name}:acquire")
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(self)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Return a slot, admitting the next waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        if self._waiters:
            # Hand the slot directly to the next waiter; _in_use unchanged.
            self._waiters.popleft().succeed(self)
        else:
            self._in_use -= 1

    @contextmanager
    def held(self) -> Iterator[None]:
        """``with`` helper for code that already holds a slot: releases on
        exit even if the body raises.  (Acquisition itself must be yielded
        from the owning process: ``yield res.acquire()``.)"""
        try:
            yield
        finally:
            self.release()
