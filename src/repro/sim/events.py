"""Event primitives for the discrete-event engine.

An :class:`Event` is a one-shot synchronisation point: processes waiting on
it are resumed when it *succeeds* (with a value) or *fails* (with an
exception).  :class:`Timeout` is an event that succeeds after a fixed delay.
:class:`AllOf` / :class:`AnyOf` combine events into barrier / race
conditions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine

# Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()


class Event:
    """One-shot event; the basic waitable of the engine.

    States:

    * *pending* — freshly created, nothing has happened;
    * *triggered* — :meth:`succeed` or :meth:`fail` was called and the event
      sits in the engine queue waiting to be processed;
    * *processed* — callbacks have run; waiting on a processed event
      resumes the waiter immediately.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "_processed", "name")

    def __init__(self, engine: "Engine", name: str = "") -> None:
        self.engine = engine
        #: Callbacks invoked (in registration order) when the event is
        #: processed.  ``None`` once processed — late registrations are
        #: invoked immediately by :meth:`add_callback`.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._processed = False
        self.name = name

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (success or failure)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise RuntimeError(f"event {self!r} not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception."""
        if self._value is _PENDING:
            raise RuntimeError(f"event {self!r} not yet triggered")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"event {self!r} already triggered")
        self._ok = True
        self._value = value
        self.engine._enqueue(self, delay=0.0)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed with exception ``exc``."""
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self.triggered:
            raise RuntimeError(f"event {self!r} already triggered")
        self._ok = False
        self._value = exc
        self.engine._enqueue(self, delay=0.0)
        return self

    # -- callback plumbing -------------------------------------------------
    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn`` to run when the event is processed.

        If the event has already been processed the callback is scheduled
        to run immediately (at the current simulation time) instead of
        being silently dropped.
        """
        if self.callbacks is None:
            # Already processed: deliver on a fresh queue pass so that the
            # caller never observes re-entrant execution.  The callback
            # still receives *this* event (waiters compare identity).
            proxy = Event(self.engine, name=f"{self.name}:late")
            proxy.callbacks.append(lambda _ev: fn(self))  # type: ignore[union-attr]
            proxy._ok = True
            proxy._value = None
            self.engine._enqueue(proxy, delay=0.0)
        else:
            self.callbacks.append(fn)

    def _process(self) -> None:
        """Run callbacks.  Called by the engine only."""
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for fn in callbacks:
                fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self._processed else (
            "triggered" if self.triggered else "pending")
        label = self.name or self.__class__.__name__
        return f"<{label} {state} at {id(self):#x}>"


class CompletionEvent(Event):
    """Event describing the completion of one fabric operation.

    Both fabric front-ends (:class:`repro.dv.api.DataVortexAPI` and
    :class:`repro.ib.mpi.MPIEndpoint`) return these from their send and
    barrier paths, so callers can introspect what finished without
    caring which fabric ran it.  The success value remains the
    operation's payload, exactly as with a plain :class:`Event` —
    the metadata rides alongside and costs nothing to ignore.

    Attributes
    ----------
    fabric:
        ``"dv"`` or ``"ib"``.
    op:
        Operation kind (``"transmit"``, ``"send"``, ``"barrier"``, ...).
    src, dest:
        Endpoint indices (``-1`` when not applicable, e.g. barriers).
    tag:
        Message tag (IB) or counter index (DV); 0 when unused.
    words, nbytes:
        Payload size in 64-bit words (DV) / bytes (IB); 0 when unknown.
    """

    __slots__ = ("fabric", "op", "src", "dest", "tag", "words", "nbytes")

    def __init__(self, engine: "Engine", *, fabric: str = "", op: str = "",
                 src: int = -1, dest: int = -1, tag: int = 0,
                 words: int = 0, nbytes: int = 0, name: str = "") -> None:
        super().__init__(engine, name=name)
        self.fabric = fabric
        self.op = op
        self.src = src
        self.dest = dest
        self.tag = tag
        self.words = words
        self.nbytes = nbytes


class Timeout(Event):
    """Event that succeeds ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None,
                 name: str = "") -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(engine, name=name or f"timeout({delay:g})")
        self.delay = delay
        self._ok = True
        self._value = value
        engine._enqueue(self, delay=delay)


class _Condition(Event):
    """Shared machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_n_done")

    def __init__(self, engine: "Engine", events: Iterable[Event],
                 name: str = "") -> None:
        super().__init__(engine, name=name)
        self.events: List[Event] = list(events)
        self._n_done = 0
        if not self.events:
            self.succeed([])
            return
        for ev in self.events:
            if ev.engine is not engine:
                raise ValueError("cannot mix events from different engines")
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> List[Any]:
        return [ev.value for ev in self.events if ev.triggered and ev.ok]


class AllOf(_Condition):
    """Succeeds when *all* child events have succeeded.

    The value is the list of child values in child order.  Fails as soon
    as any child fails.
    """

    __slots__ = ()

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._n_done += 1
        if self._n_done == len(self.events):
            self.succeed([e.value for e in self.events])


class AnyOf(_Condition):
    """Succeeds when the *first* child event succeeds.

    The value is a ``(index, value)`` pair identifying the winner.  Fails
    if the first child to trigger fails.
    """

    __slots__ = ()

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self.succeed((self.events.index(ev), ev.value))
