"""FIFO item store — the model for every hardware queue in the system.

A :class:`Store` holds opaque items.  ``put`` and ``get`` return events;
``get`` on an empty store blocks the caller until an item arrives.  With a
finite ``capacity``, ``put`` blocks while the store is full (used to model
back-pressure, e.g. NIC send queues).
"""

from __future__ import annotations

import collections
from typing import TYPE_CHECKING, Any, Deque, List

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


class Store:
    """Blocking FIFO queue of items.

    Parameters
    ----------
    engine:
        Owning engine.
    capacity:
        Maximum number of buffered items; ``float('inf')`` (default) for
        an unbounded queue.
    name:
        Label used in diagnostics.
    """

    def __init__(self, engine: "Engine", capacity: float = float("inf"),
                 name: str = "") -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self.items: Deque[Any] = collections.deque()
        self._getters: Deque[Event] = collections.deque()
        self._putters: Deque[tuple[Event, Any]] = collections.deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_empty(self) -> bool:
        return not self.items

    @property
    def is_full(self) -> bool:
        return len(self.items) >= self.capacity

    # -- operations --------------------------------------------------------
    def put(self, item: Any) -> Event:
        """Enqueue ``item``; returns an event that succeeds on acceptance."""
        ev = Event(self.engine, name=f"{self.name}:put")
        if self._getters:
            # Hand the item straight to the longest-waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed(item)
        elif not self.is_full:
            self.items.append(item)
            ev.succeed(item)
        else:
            self._putters.append((ev, item))
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False instead of queueing when full."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.is_full:
            return False
        self.items.append(item)
        return True

    def get(self) -> Event:
        """Dequeue an item; returns an event carrying it."""
        ev = Event(self.engine, name=f"{self.name}:get")
        if self.items:
            ev.succeed(self.items.popleft())
            self._admit_putters()
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns ``(found, item)``."""
        if self.items:
            item = self.items.popleft()
            self._admit_putters()
            return True, item
        return False, None

    def drain(self) -> List[Any]:
        """Remove and return all buffered items at once (poll-style)."""
        out = list(self.items)
        self.items.clear()
        self._admit_putters()
        return out

    def _admit_putters(self) -> None:
        while self._putters and not self.is_full:
            ev, item = self._putters.popleft()
            self.items.append(item)
            ev.succeed(item)
