"""The PDES hub: shard construction, window loop, process workers.

One :class:`ShardState` is the sharded twin of everything
:func:`repro.core.cluster.run_spmd` builds — a
:class:`~repro.sim.pdes.engine.ShardEngine`, the sharded transport
(:class:`~repro.dv.fastflow.ShardedFlowNetwork` or
:class:`~repro.ib.fastfabric.ShardedIBFabric` under an
:class:`~repro.ib.mpi.MPIRuntime`), VICs/APIs/contexts for the shard's
own ranks (foreign slots are ``None``), and one rank process per local
rank, rooted at its rank as cascade origin.

The hub drives all shards through conservative windows::

    T   = min over shards of next-event time
    end = T + lookahead            # min cross-shard latency
    every shard runs events with fire_t < end, logging ledger rows
    hub merges rows (deterministic key), replays global pricing
    shards finish their transfers: local arrivals scheduled, cross-
    shard arrival records routed and ingested under burned merge keys

Lookahead guarantees every priced arrival fires at or beyond ``end``,
so no shard ever hears about its past — no rollbacks, no null messages.

Two execution modes share this loop byte-for-byte: ``fork`` (one OS
process per shard, pipes for the barrier protocol — the fast path) and
``in-process`` (same ShardState objects driven sequentially — used when
``fork`` is unavailable, and by the equivalence tests to separate
protocol bugs from transport bugs).

Anything the sharded transports cannot split exactly raises
:class:`~repro.sim.pdes.ShardingFallback`, which
:func:`repro.core.cluster.run_spmd` converts into a serial rerun.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.context import RankContext
from repro.core.trace import Tracer
from repro.dv.api import DataVortexAPI
from repro.dv.barrier import FastBarrier, HardwareBarrier
from repro.dv.fastflow import ShardedFlowNetwork
from repro.dv.flow import FlowStats
from repro.dv.vic import VIC
from repro.faults import injector as fltreg
from repro.ib.fabric import FabricStats
from repro.ib.fastfabric import ShardedIBFabric
from repro.ib.mpi import MPIRuntime
from repro.sim.engine import Engine, SimulationError
from repro.sim.pdes import ShardingFallback
from repro.sim.pdes.engine import ShardEngine
from repro.sim.pdes.ledger import DVReplayer, IBReplayer, merge_rows

_INF = float("inf")


def fork_available() -> bool:
    """Whether the fast multi-process mode can run on this platform."""
    return "fork" in mp.get_all_start_methods()


class ShardOutcome:
    """Picklable end-of-run report from one shard."""

    __slots__ = ("shard_id", "now", "processed", "results", "stats",
                 "cpu_s")

    def __init__(self, shard_id: int, now: float, processed: int,
                 results: Dict[int, tuple], stats: Any,
                 cpu_s: float = 0.0) -> None:
        self.shard_id = shard_id
        self.now = now
        self.processed = processed
        #: rank -> (triggered, ok, value-or-exception)
        self.results = results
        self.stats = stats
        #: CPU seconds this shard burned on its commands (build through
        #: finish) — process time, so valid even when shards timeshare
        #: one core; max(cpu_s) + hub CPU estimates the parallel
        #: critical path
        self.cpu_s = cpu_s


class ShardState:
    """One shard's engine, transport, and rank processes."""

    def __init__(self, spec, program, fabric: str,
                 shard_of: np.ndarray, shard_id: int) -> None:
        self.shard_id = shard_id
        self.fabric = fabric
        engine = self.engine = ShardEngine(shard_id=shard_id)
        n = spec.n_nodes
        local = [r for r in range(n) if shard_of[r] == shard_id]
        self.local_ranks = local
        tracer = Tracer(enabled=False)  # spec.trace falls back earlier

        contexts: List[RankContext] = []
        if fabric == "dv":
            net = ShardedFlowNetwork(engine, spec.dv, n, shard_of, shard_id)
            mine = set(local)
            vics = [VIC(engine, spec.dv, i, net) if i in mine else None
                    for i in range(n)]
            apis = {r: DataVortexAPI(engine, spec.dv, vics[r], net)
                    for r in local}
            hw_barrier = HardwareBarrier(engine, spec.dv, vics, net)
            fast_barrier = FastBarrier(engine, spec.dv, vics, net)
            for api in apis.values():
                api.hw_barrier = hw_barrier
                api.fast_barrier_impl = fast_barrier
            for r in local:
                contexts.append(RankContext(engine, r, n, spec.node, tracer,
                                            spec.seed, dv=apis[r]))
            self.net = net
        else:
            def fabric_cls(e, c, nn, contention=True):
                return ShardedIBFabric(e, c, nn, contention=contention,
                                       shard_of=shard_of, shard_id=shard_id)
            runtime = MPIRuntime(engine, spec.ib, n,
                                 contention=spec.ib_contention,
                                 fabric_cls=fabric_cls)
            for r in local:
                contexts.append(RankContext(engine, r, n, spec.node, tracer,
                                            spec.seed,
                                            mpi=runtime.endpoint(r)))
            self.net = runtime.fabric

        # Rank order matters: the serial engine spawns rank processes in
        # rank order, and their start events tie-break by origin.
        self.procs = {ctx.rank: engine.process(program(ctx),
                                               name=f"rank{ctx.rank}",
                                               origin=ctx.rank)
                      for ctx in contexts}

    # -- hub protocol -----------------------------------------------------
    def peek(self) -> float:
        return self.engine.peek()

    def run_window(self, end: float) -> tuple:
        """Run [now, end); returns (events processed, ledger rows,
        unsupported-reason-or-None)."""
        n = self.engine.run_window(end)
        return n, self.net.take_rows(), getattr(self.net, "unsupported",
                                                None)

    def price(self, prices: list) -> list:
        """Finish the window's transfers; returns cross-shard records."""
        return self.net.price_and_emit(prices)

    def ingest(self, records: list) -> float:
        for rec in records:
            self.net.ingest(rec)
        return self.engine.peek()

    def finish(self) -> ShardOutcome:
        results = {}
        for r, p in self.procs.items():
            value = p.value if p.triggered else None
            results[r] = (p.triggered, p.triggered and p.ok, value)
        return ShardOutcome(self.shard_id, self.engine.now,
                            self.engine.events_processed, results,
                            self.net.stats)


# -- shard handles (uniform post/take over both modes) ----------------------

class _LocalHandle:
    """Drives a ShardState in this process (in-process mode)."""

    def __init__(self, spec, program, fabric, shard_of, shard_id) -> None:
        t0 = time.process_time()
        self.state = ShardState(spec, program, fabric, shard_of, shard_id)
        self._cpu = time.process_time() - t0
        self._reply = ("ok", self.state.peek())

    def post(self, msg: tuple) -> None:
        state = self.state
        op = msg[0]
        t0 = time.process_time()
        try:
            if op == "window":
                self._reply = ("ok", state.run_window(msg[1]))
            elif op == "price":
                self._reply = ("ok", state.price(msg[1]))
            elif op == "ingest":
                self._reply = ("ok", state.ingest(msg[1]))
            elif op == "finish":
                out = state.finish()
                out.cpu_s = self._cpu + (time.process_time() - t0)
                self._reply = ("ok", out)
            else:  # pragma: no cover - hub bug
                raise RuntimeError(f"unknown shard command {op!r}")
        except ShardingFallback:
            raise
        except BaseException as e:  # noqa: BLE001 - routed to fallback
            self._reply = ("error", f"{type(e).__name__}: {e}")
        finally:
            if op != "finish":
                self._cpu += time.process_time() - t0

    def take(self):
        return self._reply

    def close(self) -> None:
        pass


def _shard_worker(conn, spec, program, fabric, shard_of,
                  shard_id) -> None:
    """Child-process command loop (fork mode).

    State is built *after* the fork from the inherited closure — shards
    construct their hop tables and pools concurrently, and nothing but
    ledger rows, prices, and arrival records ever crosses the pipe.
    """
    try:
        state = ShardState(spec, program, fabric, shard_of, shard_id)
        conn.send(("ok", state.peek()))
        while True:
            msg = conn.recv()
            op = msg[0]
            if op == "window":
                conn.send(("ok", state.run_window(msg[1])))
            elif op == "price":
                conn.send(("ok", state.price(msg[1])))
            elif op == "ingest":
                conn.send(("ok", state.ingest(msg[1])))
            elif op == "finish":
                out = state.finish()
                # child process: everything it ever did is its own CPU
                out.cpu_s = time.process_time()
                conn.send(("ok", out))
                conn.close()
                return
            else:  # pragma: no cover - hub bug
                raise RuntimeError(f"unknown shard command {op!r}")
    except BaseException as e:  # noqa: BLE001 - routed to fallback
        try:
            conn.send(("error", f"{type(e).__name__}: {e}"))
        except Exception:
            pass


class _ForkHandle:
    """Drives a ShardState in a forked child over a pipe."""

    def __init__(self, ctx, spec, program, fabric, shard_of,
                 shard_id) -> None:
        self.conn, child = mp.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_shard_worker,
            args=(child, spec, program, fabric, shard_of, shard_id),
            daemon=True)
        self.proc.start()
        child.close()

    def post(self, msg: tuple) -> None:
        self.conn.send(msg)

    def take(self):
        try:
            return self.conn.recv()
        except EOFError:
            return ("error", "shard worker died")

    def close(self) -> None:
        try:
            self.conn.close()
        finally:
            self.proc.join(timeout=5.0)
            if self.proc.is_alive():  # pragma: no cover - hung child
                self.proc.terminate()
                self.proc.join(timeout=5.0)


def _exchange(handles: list, messages: list) -> list:
    """Issue one command to every shard, then collect every reply.

    Posting everything before reading anything is what lets forked
    shards overlap their windows — the whole speedup lives here.
    Any shard-side error aborts the sharded attempt.
    """
    for h, msg in zip(handles, messages):
        h.post(msg)
    replies = []
    for h in handles:
        status, payload = h.take()
        if status != "ok":
            raise ShardingFallback(f"shard error: {payload}")
        replies.append(payload)
    return replies


def _broadcast(handles: list, msg: tuple) -> list:
    return _exchange(handles, [msg] * len(handles))


# -- the hub ----------------------------------------------------------------

def _precheck(spec, shards: int) -> None:
    """Raise ShardingFallback for runs the sharded path must not take."""
    if shards < 2:
        raise ShardingFallback("shards < 2 — serial path")
    if spec.flow_impl != "fast":
        raise ShardingFallback(
            "sharding requires flow_impl='fast' (the reference engines "
            "price transfers inline against global state)")
    if spec.trace:
        raise ShardingFallback(
            "tracing records a single global event stream; rerunning "
            "serially")
    if fltreg.active() is not None:
        raise ShardingFallback(
            "fault injection draws from process-global RNG streams in "
            "delivery order; rerunning serially")


def run_spmd_sharded(spec, program, fabric: str = "dv",
                     max_events: Optional[int] = None, *,
                     shards: int, in_process: bool = False):
    """Sharded twin of :func:`repro.core.cluster.run_spmd`.

    Returns a :class:`repro.core.cluster.RunResult` that is
    bit-identical (values, elapsed time, integer network stats) to the
    serial run, or raises :class:`ShardingFallback` when it cannot
    guarantee that — the caller then runs serially.
    """
    from repro.core.cluster import RunResult
    from repro.core.scaling import (dv_lookahead_s, ib_lookahead_s,
                                    partition_ports)

    _precheck(spec, shards)
    n = spec.n_nodes
    shard_of = partition_ports(n, shards, fabric=fabric,
                               dv=spec.dv, ib=spec.ib)
    n_shards = int(shard_of[-1]) + 1  # trailing shards may be empty
    if n_shards < 2:
        raise ShardingFallback("partition degenerated to one shard")

    if fabric == "dv":
        lookahead = dv_lookahead_s(spec.dv, n)
        replayer = DVReplayer(spec.dv, n)
    else:
        lookahead = ib_lookahead_s(spec.ib)
        replayer = IBReplayer(spec.ib, n, contention=spec.ib_contention)

    use_fork = not in_process and fork_available()
    handles: list = []
    hub_cpu0 = time.process_time()
    n_windows = 0
    try:
        if use_fork:
            ctx = mp.get_context("fork")
            handles = [_ForkHandle(ctx, spec, program, fabric, shard_of, s)
                       for s in range(n_shards)]
        else:
            handles = [_LocalHandle(spec, program, fabric, shard_of, s)
                       for s in range(n_shards)]

        peeks = []
        for h in handles:
            status, payload = h.take()
            if status != "ok":
                raise ShardingFallback(f"shard build failed: {payload}")
            peeks.append(payload)

        total_events = 0
        while True:
            t0 = min(peeks)
            if t0 == _INF:
                break
            end = t0 + lookahead
            n_windows += 1
            windows = _broadcast(handles, ("window", end))

            rows_by_shard = []
            for n_ev, rows, unsupported in windows:
                if unsupported is not None:
                    raise ShardingFallback(unsupported)
                total_events += n_ev
                rows_by_shard.append(rows)
            if max_events is not None and total_events > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} "
                    f"(simulated time {t0:g}s)")

            # Global pricing in the deterministic serial replay order;
            # each price is routed back to the shard that logged its row,
            # in that shard's local row order.
            prices: List[list] = [[None] * len(r) for r in rows_by_shard]
            if fabric == "dv":
                for t_tx, _o, _q, sid, k, row in merge_rows(rows_by_shard):
                    prices[sid][k] = replayer.price(t_tx, row[3], row[4])
            else:
                for t_tx, _o, _q, sid, k, row in merge_rows(rows_by_shard):
                    prices[sid][k] = replayer.price(t_tx, row[3], row[4],
                                                    row[5])

            records = _exchange(handles,
                                [("price", p) for p in prices])
            inboxes: List[list] = [[] for _ in range(n_shards)]
            for recs in records:
                for rec in recs:
                    inboxes[rec[-1]].append(rec)
            peeks = _exchange(handles,
                              [("ingest", box) for box in inboxes])

        outcomes = _broadcast(handles, ("finish",))
    finally:
        for h in handles:
            h.close()

    # -- assemble the serial-shaped result ---------------------------------
    values: List[Any] = [None] * n
    for out in outcomes:
        for r, (triggered, ok, value) in out.results.items():
            if not triggered:
                raise ShardingFallback(
                    f"rank{r} never finished under sharding (likely "
                    "waiting on a cross-shard completion event); "
                    "rerunning serially")
            if not ok:
                # A genuine program error reproduces serially with full
                # traceback fidelity; a sharded-only failure vanishes.
                raise ShardingFallback(
                    f"rank{r} failed under sharding: {value!r}; "
                    "rerunning serially")
            values[r] = value

    elapsed = max(out.now for out in outcomes)
    if fabric == "dv":
        stats = FlowStats()
        for out in outcomes:
            stats.packets_sent += out.stats.packets_sent
            stats.transfers += out.stats.transfers
            # float wait totals are order-sensitive sums; the per-shard
            # partials give a close (not bit-exact) aggregate.  Nothing
            # golden-pinned consumes them.
            stats.total_injection_wait_s += out.stats.total_injection_wait_s
            stats.total_ejection_wait_s += out.stats.total_ejection_wait_s
    else:
        stats = FabricStats()
        for out in outcomes:
            stats.messages += out.stats.messages
            stats.bytes += out.stats.bytes
            stats.cross_leaf_messages += out.stats.cross_leaf_messages
        # exact: accumulated by the replayer in serial row order
        stats.total_queue_wait_s = replayer.total_queue_wait_s

    # Execution report for perf tooling (repro.sim.pdes.last_report):
    # max shard CPU + hub CPU is the parallel critical path, which
    # projects the fork-mode wall clock even when the host timeshares
    # the shards over fewer cores than shards.
    import repro.sim.pdes as _pdes
    hub_cpu = time.process_time() - hub_cpu0
    _pdes._LAST_REPORT = {
        "fabric": fabric,
        "mode": "fork" if use_fork else "in-process",
        "n_shards": n_shards,
        "windows": n_windows,
        "events_per_shard": [out.processed for out in outcomes],
        "shard_cpu_s": [out.cpu_s for out in outcomes],
        "hub_cpu_s": hub_cpu,
        "critical_path_s": max(out.cpu_s for out in outcomes) + hub_cpu,
    }

    # A synthetic engine carrying the merged clock: RunResult consumers
    # read .now / .events_processed off it.
    engine = Engine(start=elapsed)
    engine._processed_count = sum(out.processed for out in outcomes)
    return RunResult(values=values, elapsed=elapsed,
                     tracer=Tracer(enabled=False), engine=engine,
                     fabric=fabric, net_stats=stats)
