"""Conservative parallel discrete-event simulation (PDES).

Shards the flow-network cluster simulation across OS processes: the
partitioner (:func:`repro.core.scaling.partition_ports`) assigns nodes
to shards by DV cylinder height / fat-tree leaf, each shard runs its own
:class:`~repro.sim.pdes.engine.ShardEngine` event loop, and a hub
synchronises them with epoch windows whose width equals the minimum
cross-shard link latency (null-message-free conservative PDES).
Cross-shard traffic is merged under a deterministic key
``(timestamp, scheduled-at, origin rank, sequence id)`` so sharded runs
are **bit-identical** to serial — the property the golden harness's
fifth axis checks on every pinned figure.

Select with ``ClusterSpec(flow_impl="fast", shards=N)`` or, scoped (the
golden-axis / test idiom, mirroring ``faults.session``)::

    with pdes.session(2):
        result = run_spmd(spec, program, fabric="dv")

Programs the sharded transports cannot split exactly (rendezvous MPI
sends, installed fault plans, tracing, the reference flow engine) raise
:class:`ShardingFallback` internally and are transparently re-run
serially — correctness first, speed when safe.
"""

from __future__ import annotations

from contextlib import contextmanager


class ShardingUnsupported(RuntimeError):
    """A transport operation the sharded engines cannot split exactly
    (e.g. a rendezvous MPI send, whose handshake couples the two ranks
    mid-window).  Caught by the runner and converted into a
    :class:`ShardingFallback`."""


class ShardingFallback(RuntimeError):
    """Internal signal: this run must be (re-)executed serially.

    Never escapes :func:`repro.core.cluster.run_spmd` — the caller sees
    the serial result, which the sharded path is defined to match."""


# Scoped shard-count override, consulted by run_spmd when the spec says
# shards=1.  0 = no override.  Mirrors faults.injector.session.
_SESSION_SHARDS = 0

# Execution report of the most recent sharded run in this process,
# written by the runner at finish.  None until a sharded run completes.
_LAST_REPORT = None


def last_report():
    """Execution report of the last sharded run: shard/hub CPU seconds,
    window and event counts, and ``critical_path_s`` (max shard CPU +
    hub CPU — the fork-mode wall-clock projection, valid even when the
    host timeshares shards over fewer cores than shards).  ``None``
    before any sharded run finishes."""
    return _LAST_REPORT


def session_shards() -> int:
    """The scoped shard-count override (0 when none is active)."""
    return _SESSION_SHARDS


@contextmanager
def session(shards: int):
    """Scoped shard-count override restoring the previous value.

    Lets the golden harness and tests shard existing experiment entry
    points without threading a parameter through every call site."""
    global _SESSION_SHARDS
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if _SESSION_SHARDS:
        # The override is a single process-wide slot: a nested session
        # would silently reshard the outer scope's runs (the
        # shared-state hazard the tenancy layer exposed).  There is no
        # per-tenant variant — sharding partitions the whole engine —
        # so nesting is an error, not a composition.
        raise RuntimeError(
            f"nested pdes.session: a {_SESSION_SHARDS}-shard session "
            "is already active in this process")
    prev = _SESSION_SHARDS
    _SESSION_SHARDS = int(shards)
    try:
        yield _SESSION_SHARDS
    finally:
        _SESSION_SHARDS = prev


__all__ = [
    "ShardingUnsupported",
    "ShardingFallback",
    "last_report",
    "session",
    "session_shards",
]
