"""Deferred global pricing for the sharded flow engines.

Both fast fabrics have exactly one piece of *global* state that couples
shards at transmit time:

* Data Vortex — the busy-port census behind the deflection penalty
  (``FlowNetwork._load``);
* InfiniBand — the channel next-free-time accumulators behind static
  -routing contention (``IBFabric._free``).

The sharded engines therefore never price a transfer inline.  Each
transmit logs one *ledger row* and the hub replays the merged rows on a
persistent replayer at every window barrier, in the deterministic order

    (t_tx, origin, lseq, shard_id)

which reconstructs the serial engine's transmit-call order (serial
processes same-instant cascades in rank order; ``lseq`` is the shard's
sequence number burned at the call, monotone within a cascade).  The
replayers below apply, per row, *exactly* the state updates and float
operations of the serial engines — same operations, same order, same
rounding — so the prices they return are bit-identical to serial.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import List, Tuple

from repro.dv.config import DVConfig
from repro.ib.config import IBConfig

#: DV ledger row: (t_tx, origin, lseq, src, mark_end)
DVRow = Tuple[float, int, int, int, float]
#: IB ledger row: (t_tx, origin, lseq, src, dst, nbytes)
IBRow = Tuple[float, int, int, int, int, int]


def merge_rows(rows_by_shard: List[list]) -> List[tuple]:
    """Merge per-shard ledger rows into global replay order.

    Returns ``(t_tx, origin, lseq, shard_id, local_index, row)`` tuples
    sorted by the deterministic key; ``(shard_id, local_index)`` lets
    the hub route each row's price back to the shard that logged it.
    """
    merged = []
    for sid, rows in enumerate(rows_by_shard):
        for k, row in enumerate(rows):
            merged.append((row[0], row[1], row[2], sid, k, row))
    merged.sort(key=lambda e: e[:4])
    return merged


class DVReplayer:
    """Replays the serial busy-port state machine for priced rows.

    Mirrors ``FlowNetwork.transmit`` steps 1-2: record the source port's
    new ``inject_free`` mark, then evaluate ``_load(t_tx)`` with lazy
    mark retirement.  One instance persists across all windows of a run
    — its heap and flags are exactly the serial network's at every row.
    """

    def __init__(self, config: DVConfig, n_ports: int) -> None:
        cfg = config.scaled_to_ports(n_ports)
        self.n_ports = n_ports
        self._defl = cfg.deflection_hops_per_load
        self._inject_free = [0.0] * n_ports
        self._port_busy = [False] * n_ports
        self._busy_ports = 0
        self._busy_heap: list = []

    def price(self, t_tx: float, src: int, mark_end: float) -> float:
        """Deflection penalty the serial engine would compute for this
        transmit (``deflection_hops_per_load * _load(t_tx)``)."""
        self._inject_free[src] = mark_end
        if not self._port_busy[src]:
            self._port_busy[src] = True
            self._busy_ports += 1
        heappush(self._busy_heap, (mark_end, src))
        heap = self._busy_heap
        while heap and heap[0][0] <= t_tx:
            _, port = heappop(heap)
            if self._port_busy[port] and self._inject_free[port] <= t_tx:
                self._port_busy[port] = False
                self._busy_ports -= 1
        return self._defl * (self._busy_ports / self.n_ports)

    def price_rows(self, rows: List[DVRow]) -> List[float]:
        return [self.price(r[0], r[3], r[4]) for r in rows]


class _StoppedEngine:
    """Minimal stand-in so a fabric can be used as a pure route oracle."""

    now = 0.0


class IBReplayer:
    """Replays the serial channel-accumulator pricing for IB rows.

    Owns a throwaway :class:`~repro.ib.fastfabric.FastIBFabric` purely
    as a route oracle (``_cached_path`` / ``hops`` are pure functions of
    the pair) plus its own free-time dict, and accumulates
    ``total_queue_wait_s`` in serial row order — float addition is not
    associative, so the wait total must be summed here, not per shard.
    """

    def __init__(self, config: IBConfig, n_nodes: int,
                 contention: bool = True) -> None:
        from repro.ib.fastfabric import FastIBFabric
        self._oracle = FastIBFabric(_StoppedEngine(), config, n_nodes,
                                    contention=contention)
        self._cfg = self._oracle.config
        self._free: dict = {}
        self.total_queue_wait_s = 0.0

    def price(self, t_tx: float, src: int, dst: int, nbytes: int) -> float:
        """Arrival time the serial engine would compute for this
        transfer (faults are never active on the sharded path)."""
        cfg = self._cfg
        path = self._oracle._cached_path(src, dst)
        occupancy = max(nbytes / cfg.effective_bw, cfg.msg_gap_s)
        free = self._free
        start = t_tx
        for ch in path:
            t = free.get(ch, 0.0)
            if t > start:
                start = t
        self.total_queue_wait_s += start - t_tx
        busy_until = start + occupancy
        for ch in path:
            free[ch] = busy_until
        return (start + occupancy + 0.0 + cfg.wire_latency_s
                + self._oracle.hops(src, dst) * cfg.hop_latency_s)

    def price_rows(self, rows: List[IBRow]) -> List[float]:
        return [self.price(r[0], r[3], r[4], r[5]) for r in rows]
