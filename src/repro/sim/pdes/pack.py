"""Compact cross-process encoding for DV delivery effects.

A 4096-node GUPS epoch ships millions of tiny
:class:`~repro.dv.vic.MemWrite` / :class:`~repro.dv.vic.FifoPush`
effects between shards; pickling them one object at a time would cost
more than the simulation itself.  ``pack_effects`` flattens a list of
effects into a handful of numpy arrays (one pipe write, C-speed), and
``unpack_effect`` rebuilds effect ``i`` as zero-copy views into the
pools.  Reconstruction is behaviourally exact: the VIC dispatch only
reads ``addrs``/``values``/``counter``/``n_packets``, and the API layer
guarantees the canonical dtypes (``int64`` addrs, ``uint64`` values) the
fast path requires — anything else (``Query``, odd dtypes, foreign
payload types) falls back to per-item pickle.
"""

from __future__ import annotations

import pickle
from typing import Any, List, Optional

import numpy as np

from repro.dv.vic import CounterDec, CounterSet, FifoPush, MemWrite

CODE_NONE = 0
CODE_MEMWRITE = 1
CODE_FIFOPUSH = 2
CODE_CTRDEC = 3
CODE_CTRSET = 4
CODE_PICKLE = 5

_I64 = np.dtype(np.int64)
_U64 = np.dtype(np.uint64)
_EMPTY_I64 = np.empty(0, np.int64)
_EMPTY_U64 = np.empty(0, np.uint64)


class PackedEffects:
    """Column-oriented encoding of a list of delivery effects."""

    __slots__ = ("code", "alen", "vlen", "c1", "c2",
                 "addr_pool", "val_pool", "blobs")

    def __init__(self, code, alen, vlen, c1, c2,
                 addr_pool, val_pool, blobs) -> None:
        self.code = code          # u8[n]   effect kind
        self.alen = alen          # i64[n]  addrs length
        self.vlen = vlen          # i64[n]  values length
        self.c1 = c1              # i64[n]  counter / index (-1 = None)
        self.c2 = c2              # i64[n]  count / value
        self.addr_pool = addr_pool
        self.val_pool = val_pool
        self.blobs = blobs        # Optional[bytes]: pickled {i: effect}

    def __len__(self) -> int:
        return self.code.size


def _packable_mem(e: MemWrite) -> bool:
    return (isinstance(e.addrs, np.ndarray) and e.addrs.dtype == _I64
            and isinstance(e.values, np.ndarray) and e.values.dtype == _U64
            and e.addrs.ndim == 1 and e.values.ndim == 1)


def _packable_fifo(e: FifoPush) -> bool:
    return (isinstance(e.values, np.ndarray) and e.values.dtype == _U64
            and e.values.ndim == 1)


def pack_effects(effects: List[Any]) -> PackedEffects:
    n = len(effects)
    code = np.zeros(n, np.uint8)
    alen = np.zeros(n, np.int64)
    vlen = np.zeros(n, np.int64)
    c1 = np.full(n, -1, np.int64)
    c2 = np.zeros(n, np.int64)
    a_parts: List[np.ndarray] = []
    v_parts: List[np.ndarray] = []
    oddballs: dict = {}
    for i, e in enumerate(effects):
        t = type(e)
        if t is MemWrite and _packable_mem(e):
            code[i] = CODE_MEMWRITE
            alen[i] = e.addrs.size
            vlen[i] = e.values.size
            if e.counter is not None:
                c1[i] = e.counter
            a_parts.append(e.addrs)
            v_parts.append(e.values)
        elif t is FifoPush and _packable_fifo(e):
            code[i] = CODE_FIFOPUSH
            vlen[i] = e.values.size
            if e.counter is not None:
                c1[i] = e.counter
            v_parts.append(e.values)
        elif t is CounterDec:
            code[i] = CODE_CTRDEC
            c1[i] = e.index
            c2[i] = e.count
        elif t is CounterSet:
            code[i] = CODE_CTRSET
            c1[i] = e.index
            c2[i] = e.value
        elif e is None:
            code[i] = CODE_NONE
        else:
            code[i] = CODE_PICKLE
            oddballs[i] = e
    addr_pool = np.concatenate(a_parts) if a_parts else _EMPTY_I64
    val_pool = np.concatenate(v_parts) if v_parts else _EMPTY_U64
    blobs = pickle.dumps(oddballs, -1) if oddballs else None
    return PackedEffects(code, alen, vlen, c1, c2,
                         addr_pool, val_pool, blobs)


class _Unpacker:
    """Stateful decoder: pool cursors advance in pack order, so effects
    must be decoded exactly once, in index order — which is how the
    receiving shard schedules them."""

    __slots__ = ("p", "_a", "_v", "_odd")

    def __init__(self, packed: PackedEffects) -> None:
        self.p = packed
        self._a = 0
        self._v = 0
        self._odd: Optional[dict] = (
            pickle.loads(packed.blobs) if packed.blobs is not None else None)

    def take(self, i: int) -> Any:
        p = self.p
        c = p.code[i]
        if c == CODE_MEMWRITE:
            na, nv = int(p.alen[i]), int(p.vlen[i])
            addrs = p.addr_pool[self._a:self._a + na]
            values = p.val_pool[self._v:self._v + nv]
            self._a += na
            self._v += nv
            ctr = int(p.c1[i])
            return MemWrite(addrs=addrs, values=values,
                            counter=ctr if ctr >= 0 else None)
        if c == CODE_FIFOPUSH:
            nv = int(p.vlen[i])
            values = p.val_pool[self._v:self._v + nv]
            self._v += nv
            ctr = int(p.c1[i])
            return FifoPush(values=values,
                            counter=ctr if ctr >= 0 else None)
        if c == CODE_CTRDEC:
            return CounterDec(int(p.c1[i]), int(p.c2[i]))
        if c == CODE_CTRSET:
            return CounterSet(int(p.c1[i]), int(p.c2[i]))
        if c == CODE_NONE:
            return None
        return self._odd[i]


def unpacker(packed: PackedEffects) -> _Unpacker:
    return _Unpacker(packed)
