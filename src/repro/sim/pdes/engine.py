"""Per-shard event engine for the conservative PDES layer.

A :class:`ShardEngine` is a drop-in :class:`~repro.sim.engine.Engine`
whose heap entries carry a *merge key* instead of the serial engine's
bare sequence number::

    (fire_t, sched_t, origin, seq, push)

* ``fire_t``  — when the event fires (identical to serial);
* ``sched_t`` — the simulated instant the entry was scheduled at.  The
  serial engine processes same-``fire_t`` events in enqueue order, and
  enqueue order is monotone in enqueue *time*, so ``sched_t`` is the
  coarse reconstruction of the serial sequence number;
* ``origin``  — the rank whose cascade scheduled the entry.  SPMD
  programs are symmetric: at any common instant each rank performs the
  same schedule calls, and the serial engine interleaves them in rank
  order because ``run_spmd`` spawns rank processes in rank order.
  Ordering ties by origin therefore reproduces the serial interleave
  even when the cascades live on different shards;
* ``seq``     — shard-local sequence number (or, for cross-shard
  arrivals, the sequence number *burned on the sending shard*, which
  matches what the serial engine would have assigned relative to the
  rest of that origin's cascade);
* ``push``    — local push counter; pure anti-crash tiebreak so tuple
  comparison never reaches the event object.

Origins propagate through :class:`~repro.sim.process.Process`: the
engine stamps ``_origin`` on every pop, and a resuming process re-roots
it to its own origin (``Engine._track_origin`` hook), so each rank's
cascade keeps its identity however deep the event chain gets.
"""

from __future__ import annotations

import heapq
from typing import Generator, Optional

from repro.sim.engine import Engine, SimulationError, _Wakeup
from repro.sim.process import Process


class ShardEngine(Engine):
    """Engine variant whose heap ordering is shard-mergeable.

    Running a single ShardEngine over a whole program produces the same
    *set* of events as the serial engine; running one per shard and
    merging by the key above reproduces the serial *order* for the SPMD
    programs the cluster layer runs (see docs/scaling.md for the
    argument and its limits).
    """

    _track_origin = True

    def __init__(self, start: float = 0.0, shard_id: int = 0) -> None:
        super().__init__(start)
        self.shard_id = shard_id
        self._origin = -1
        self._push = 0

    # -- scheduling (6-field merge keys) -----------------------------------
    def _enqueue(self, event, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        self._push += 1
        heapq.heappush(self._queue,
                       (self._now + delay, self._now, self._origin,
                        self._seq, self._push, event))

    def call_in(self, delay: float, fn, *args) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        self._push += 1
        heapq.heappush(self._queue,
                       (self._now + delay, self._now, self._origin,
                        self._seq, self._push, _Wakeup(fn, args)))

    def schedule_key(self, fire_t: float, sched_t: float, origin: int,
                     seq: int, fn, args) -> None:
        """Insert a callback under an *explicit* merge key.

        Used for cross-shard arrivals: the sending shard burned ``seq``
        on its own engine at transmit time, and the receiving shard must
        file the arrival exactly where the serial engine would have.
        Does not advance the local sequence counter.
        """
        self._push += 1
        heapq.heappush(self._queue,
                       (fire_t, sched_t, origin, seq, self._push,
                        _Wakeup(fn, args)))

    def burn_seq(self, n: int = 1) -> int:
        """Consume ``n`` sequence numbers; return the first one.

        Mirrors what the serial engine would burn for actions that, under
        sharding, happen on a *different* shard (remote deliveries).
        Keeping local counters aligned with serial keeps later local keys
        aligned too.
        """
        first = self._seq + 1
        self._seq += n
        return first

    # -- processes ----------------------------------------------------------
    def process(self, generator: Generator, name: str = "",
                origin: Optional[int] = None) -> Process:
        """Spawn a process; ``origin`` roots a new cascade (rank id)."""
        if origin is not None:
            self._origin = origin
        return Process(self, generator, name=name)

    # -- stepping -----------------------------------------------------------
    def step(self) -> None:
        if not self._queue:
            raise SimulationError("no scheduled events")
        t, _sched, origin, _seq, _push, event = heapq.heappop(self._queue)
        if t < self._now:  # pragma: no cover - heap invariant guard
            raise SimulationError("event scheduled in the past")
        self._now = t
        self._origin = origin
        self._processed_count += 1
        if self._obs_on:
            self._m_events.inc()
            self._m_qdepth.set_max(len(self._queue) + 1)
        event._process()

    def run_window(self, end: float) -> int:
        """Process every event with ``fire_t`` strictly below ``end``.

        The conservative window loop: ``end`` is the global horizon
        ``T + lookahead``; anything a peer shard transmits during
        ``[T, end)`` arrives at or after ``end`` (lookahead is the
        minimum cross-shard latency), so this shard can safely run to
        ``end`` without hearing from anyone.  Returns the number of
        events processed.
        """
        n = 0
        queue = self._queue
        while queue and queue[0][0] < end:
            self.step()
            n += 1
        return n
