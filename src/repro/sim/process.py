"""Generator-based simulation processes.

A :class:`Process` drives a Python generator: every value the generator
yields must be a waitable (:class:`~repro.sim.events.Event`, another
:class:`Process`, or a condition), and the process is resumed with the
waitable's value when it fires.  A process is itself an event that succeeds
with the generator's return value, so processes compose (``yield other``
joins on ``other``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


class ProcessKilled(Exception):
    """Thrown into a generator by :meth:`Process.kill`."""


class Process(Event):
    """An event that completes when its generator returns.

    Do not instantiate directly; use :meth:`Engine.process`.
    """

    __slots__ = ("_generator", "_waiting_on", "_started", "origin")

    def __init__(self, engine: "Engine", generator: Generator,
                 name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise TypeError(
                f"process body must be a generator, got {generator!r} — "
                "did you forget to call the generator function?")
        super().__init__(engine, name=name or getattr(
            generator, "__name__", "process"))
        # Cascade root this process belongs to (sharded PDES merge key);
        # -1 under the serial engine, which never tracks origins.
        self.origin = engine._origin
        self._generator = generator
        self._waiting_on: Event | None = None
        self._started = False
        # Kick off on the next queue pass so that creation order, not
        # creation *code position*, determines interleaving.
        start = Event(engine, name=f"{self.name}:start")
        start.add_callback(self._resume)
        start._ok = True
        start._value = None
        self._waiting_on = start
        engine._enqueue(start, delay=0.0)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def kill(self, reason: str = "killed") -> None:
        """Throw :class:`ProcessKilled` into the generator.

        If the generator does not catch it the process fails with the
        ``ProcessKilled`` exception.
        """
        if self.triggered:
            return
        # Detach from whatever we were waiting on: its eventual trigger
        # must not resume the generator a second time (see _resume guard).
        self._waiting_on = None
        exc = ProcessKilled(reason)
        try:
            target = self._generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
        except ProcessKilled as pk:
            self.fail(pk)
        except BaseException as err:
            self.fail(err)
        else:
            self._wait_on(target)

    # -- internal stepping -----------------------------------------------
    def _resume(self, trigger: Event) -> None:
        """Advance the generator with the trigger's value."""
        if trigger is not self._waiting_on:
            # Stale wakeup: the process was killed (or re-targeted) while
            # this waitable was pending.  Ignore it.
            return
        self._waiting_on = None
        if self.engine._track_origin:
            # Everything this resumption schedules belongs to the same
            # cascade root (shard merge ordering, repro.sim.pdes).
            self.engine._origin = self.origin
        try:
            if trigger.ok:
                target = self._generator.send(trigger.value)
            else:
                # Propagate child failure into the generator so it may
                # handle it (e.g. a timed-out counter wait).
                target = self._generator.throw(trigger.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:
            if isinstance(err, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(err)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, Event):
            self._generator.close()
            self.fail(TypeError(
                f"process {self.name!r} yielded non-waitable {target!r}"))
            return
        if target.engine is not self.engine:
            self._generator.close()
            self.fail(ValueError(
                f"process {self.name!r} yielded event from another engine"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)
