"""Deterministic random-number plumbing.

Every stochastic component (workload generators, the fat-tree collision
model, Kronecker graph builder, ...) draws from a generator derived from a
single experiment seed via :func:`derive_seed`, so whole-cluster runs are
reproducible while distinct components never share a stream.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Union

import numpy as np

Seedable = Union[int, str]


def derive_seed(root: int, *path: Seedable) -> int:
    """Derive a 63-bit child seed from ``root`` and a label path.

    The derivation hashes the path, so ``derive_seed(s, "gups", rank)`` is
    stable across runs and uncorrelated between ranks.

    >>> derive_seed(42, "gups", 3) == derive_seed(42, "gups", 3)
    True
    >>> derive_seed(42, "gups", 3) != derive_seed(42, "gups", 4)
    True
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(root)).encode())
    for part in path:
        h.update(b"/")
        h.update(str(part).encode())
    return int.from_bytes(h.digest(), "little") & (2**63 - 1)


def rng_for(root: int, *path: Seedable) -> np.random.Generator:
    """NumPy generator seeded via :func:`derive_seed`."""
    return np.random.default_rng(derive_seed(root, *path))


class SeedSequenceFactory:
    """Hands out independent :class:`numpy.random.Generator` objects.

    Keeps the root seed in one place so experiment configs can expose a
    single ``seed`` knob.
    """

    def __init__(self, root: int = 0) -> None:
        self.root = int(root)

    def generator(self, *path: Seedable) -> np.random.Generator:
        """Generator for the component identified by ``path``."""
        return rng_for(self.root, *path)

    def seed(self, *path: Seedable) -> int:
        """Raw derived seed (for components that seed themselves)."""
        return derive_seed(self.root, *path)

    def spawn(self, *path: Seedable) -> "SeedSequenceFactory":
        """Child factory rooted at a derived seed."""
        return SeedSequenceFactory(self.seed(*path))


def permutation_stream(rng: np.random.Generator, n: int,
                       block: int = 1 << 16) -> Iterable[np.ndarray]:
    """Yield blocks of a random permutation of ``range(n)`` lazily.

    Used by workload generators that must visit every index exactly once
    without materialising huge arrays.
    """
    perm = rng.permutation(n)
    for lo in range(0, n, block):
        yield perm[lo:lo + block]
