"""The discrete-event engine: an event heap and a run loop.

The engine owns simulated time.  Everything that happens in a simulation is
an :class:`~repro.sim.events.Event` popped off a priority heap keyed by
``(time, sequence)``; the sequence number guarantees FIFO ordering among
same-time events, which is what makes runs bit-reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, List, Optional, Tuple

from repro.obs import registry as obsreg
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process


class SimulationError(RuntimeError):
    """Raised for engine misuse (e.g. running a finished simulation)."""


class _Wakeup:
    """Zero-payload heap entry invoking a bare callback when popped.

    The pooled fast fabrics (:mod:`repro.dv.fastflow`,
    :mod:`repro.ib.fastfabric`) schedule one of these per arrival or
    ejection instead of a full :class:`Event` + closure pair; it shares
    the heap with regular events (the engine only ever calls
    ``_process``), so ordering between the two kinds is governed by the
    usual ``(time, sequence)`` key.
    """

    __slots__ = ("fn", "args")

    def __init__(self, fn, args) -> None:
        self.fn = fn
        self.args = args

    def _process(self) -> None:
        self.fn(*self.args)


class Engine:
    """Deterministic discrete-event scheduler.

    Parameters
    ----------
    start:
        Initial simulated time in seconds (default ``0.0``).

    Notes
    -----
    The engine is single-threaded and re-entrant-safe in the sense that
    callbacks may create and trigger further events; they are appended to
    the heap and processed in order.

    **Tie determinism guarantee.**  Events scheduled for the *same*
    simulated instant fire in the order they were enqueued: every heap
    entry carries a monotonically increasing sequence number assigned at
    enqueue time, and no two entries share one, so heap ordering among
    same-time events is exactly insertion order.  This invariant is what
    the fast/reference bit-identity proofs and the sharded PDES merge
    ordering (:mod:`repro.sim.pdes`) are built on — see
    ``tests/test_sim_engine.py::test_simultaneous_events_fire_in_insertion_order``.
    """

    # Subclasses that replay events merged from several shards flip this
    # on so Process resumption re-roots the cascade-origin bookkeeping
    # (see repro.sim.pdes.engine.ShardEngine).  The serial engine never
    # reads _origin; keeping the flag a class attribute keeps the serial
    # hot path untouched.
    _track_origin = False
    _origin = -1

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._processed_count = 0
        # observability handles, resolved once; hot paths guard on the bool
        self._obs_on = obsreg.enabled()
        if self._obs_on:
            self._m_events = obsreg.counter("sim.engine.events")
            self._m_qdepth = obsreg.gauge("sim.engine.queue_depth")
            self._m_clock = obsreg.gauge("sim.engine.clock")

    # -- time --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events processed so far (diagnostics)."""
        return self._processed_count

    # -- event factories -----------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing ``delay`` seconds from now."""
        return Timeout(self, delay, value=value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Spawn a :class:`Process` driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        """Barrier condition over ``events``."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Race condition over ``events``."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _enqueue(self, event: Event, delay: float) -> None:
        """Insert a triggered event into the heap ``delay`` seconds ahead."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, event))

    def call_in(self, delay: float, fn, *args) -> None:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        A heap-only alternative to ``event + add_callback + _enqueue``
        for hot paths: no :class:`Event` is allocated and nothing can
        wait on the callback.  The sequence number is assigned *here*,
        so a ``call_in`` issued at the same instant a reference
        implementation would enqueue a marker event occupies the exact
        same position among same-time events — the property the
        fast/reference bit-identity guarantee rests on.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue,
                       (self._now + delay, self._seq, _Wakeup(fn, args)))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        t, _seq, event = heapq.heappop(self._queue)
        if t < self._now:  # pragma: no cover - heap invariant guard
            raise SimulationError("event scheduled in the past")
        self._now = t
        self._processed_count += 1
        if self._obs_on:
            self._m_events.inc()
            self._m_qdepth.set_max(len(self._queue) + 1)
            # the live simulation clock: progress streams (repro.service)
            # read the peak as "how far has simulated time advanced"
            self._m_clock.set_max(t)
        event._process()

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or
        ``max_events`` have been processed.

        Parameters
        ----------
        until:
            Stop once the next event would occur strictly after this time;
            the clock is advanced to ``until``.
        max_events:
            Safety valve for runaway simulations; raises
            :class:`SimulationError` when exhausted.
        """
        n = 0
        while self._queue:
            if until is not None and self.peek() > until:
                self._now = until
                return
            if max_events is not None and n >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} "
                    f"(simulated time {self._now:g}s)")
            self.step()
            n += 1
        if until is not None and until > self._now:
            self._now = until

    def run_process(self, generator: Generator, name: str = "",
                    until: Optional[float] = None) -> Any:
        """Convenience: spawn ``generator``, run to completion, return its
        value.  Raises the process's exception on failure."""
        proc = self.process(generator, name=name)
        self.run(until=until)
        if not proc.triggered:
            raise SimulationError(
                f"process {name or generator!r} did not finish "
                f"(deadlock or until= too small)")
        if not proc.ok:
            raise proc.value
        return proc.value
