"""Discrete-event simulation kernel.

A small, deterministic, generator-based discrete-event engine in the style
of SimPy, purpose-built for the Data Vortex reproduction.  Every network,
NIC, and SPMD rank in :mod:`repro` is a :class:`Process` driven by this
engine; simulated time is a ``float`` number of seconds.

Highlights
----------
* **Determinism** — events scheduled for the same timestamp are processed
  in schedule order (a monotonically increasing sequence number breaks
  ties), so repeated runs with the same seed produce identical traces.
* **Processes** — plain Python generators that ``yield`` waitables
  (:class:`Timeout`, :class:`Event`, other processes, or
  :class:`AllOf`/:class:`AnyOf` conditions).
* **Stores** — FIFO item queues used to model hardware queues (surprise
  FIFOs, NIC receive queues, DMA tables).

Example
-------
>>> from repro.sim import Engine
>>> eng = Engine()
>>> def hello(eng):
...     yield eng.timeout(1.5)
...     return "done at %.1f" % eng.now
>>> p = eng.process(hello(eng))
>>> eng.run()
>>> p.value
'done at 1.5'
"""

from repro.sim.engine import Engine, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process, ProcessKilled
from repro.sim.resources import Resource
from repro.sim.store import Store
from repro.sim.rng import SeedSequenceFactory, derive_seed

__all__ = [
    "AllOf",
    "AnyOf",
    "Engine",
    "Event",
    "Process",
    "ProcessKilled",
    "Resource",
    "SeedSequenceFactory",
    "SimulationError",
    "Store",
    "Timeout",
    "derive_seed",
]
