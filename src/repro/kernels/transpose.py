"""Distributed matrix transposition — the communication primitive behind
the FFT kernels and the Vorticity application.

Row-distributed ``(rows, n)`` complex blocks are redistributed so each
rank ends up with its rows of the transposed matrix.

* :func:`mpi_transpose` — pack, non-blocking ``alltoall``, unpack;
* :func:`dv_transpose_batch` — the Data Vortex restructure (paper §VI–
  VII): several fields share one communication phase; words scatter
  straight to *transposed addresses* in the destination VICs' DV memory
  ("data reordering and redistribution integrated with normal data
  transfers"), the staging DMA pipelines with switch injection, and the
  receive side drains with overlapped multi-buffered DMA.
"""

from __future__ import annotations

from typing import Generator, List

import numpy as np

from repro.core.context import RankContext

#: default group counter used by the batched DV transpose
DEFAULT_COUNTER = 45


def c2w(z: np.ndarray) -> np.ndarray:
    """View a complex128 array as interleaved 64-bit words."""
    return np.ascontiguousarray(z).view(np.float64).view(np.uint64).ravel()


def w2c(w: np.ndarray, shape) -> np.ndarray:
    """Inverse of :func:`c2w`."""
    return w.view(np.float64).view(np.complex128).reshape(shape)


def mpi_transpose(ctx: RankContext, block: np.ndarray,
                  n: int) -> Generator:
    """Transpose an ``(rows, n)`` block-distributed matrix via alltoall.

    Returns this rank's ``(rows, n)`` block of the transposed matrix.
    """
    P = ctx.size
    rows = block.shape[0]
    if rows * P != n or block.shape[1] != n:
        raise ValueError(f"block {block.shape} does not tile an "
                         f"{n}x{n} matrix over {P} ranks")
    chunks = [np.ascontiguousarray(block[:, d * rows:(d + 1) * rows].T)
              for d in range(P)]
    yield from ctx.compute(stream_bytes=2 * block.nbytes, dispatches=1)
    got = yield from ctx.mpi.alltoall(chunks)
    out = np.concatenate(got, axis=1)
    yield from ctx.compute(stream_bytes=2 * out.nbytes, dispatches=1)
    return out


def dv_transpose_batch(ctx: RankContext, blocks: List[np.ndarray],
                       n: int, counter: int = DEFAULT_COUNTER
                       ) -> Generator:
    """Transpose several ``(rows, n)`` fields in one DV phase.

    Returns the list of transposed blocks (same order).  All fields
    cross PCIe in a single staging DMA, fan out through the switch as
    fine-grained packets addressed to transposed locations, and arrive
    under one group counter.
    """
    from repro.dv.vic import MemWrite

    api = ctx.dv
    P = ctx.size
    rows = blocks[0].shape[0]
    if rows * P != n:
        raise ValueError(f"{rows} rows x {P} ranks != {n}")
    for b in blocks:
        if b.shape != (rows, n):
            raise ValueError("all blocks must share the (rows, n) shape")
    nf = len(blocks)
    field_words = 2 * rows * n
    expected = nf * 2 * rows * (n - rows)   # from the P-1 other ranks

    yield from api.set_counter(counter, expected)
    yield from ctx.barrier()
    rate = api._inject_rate("dma", True)
    r0 = ctx.rank * rows
    for f, b in enumerate(blocks):
        # staggered destination order balances ejection ports
        for d in [(ctx.rank + 1 + i) % P for i in range(P)]:
            sub = np.ascontiguousarray(b[:, d * rows:(d + 1) * rows])
            j1 = np.arange(r0, r0 + rows)[None, :, None]   # their column
            j2 = np.arange(rows)[:, None, None]            # their row
            half = np.arange(2)[None, None, :]
            addrs = (f * field_words + 2 * (j2 * n + j1) + half).ravel()
            wordsT = c2w(sub.T)
            if d == ctx.rank:
                # own sub-block: host-memory transpose, no PCIe/switch
                api.vic.memory.scatter(addrs, wordsT)
                yield from ctx.compute(stream_bytes=2 * wordsT.nbytes)
            else:
                api.network.transmit(
                    ctx.rank, d, wordsT.size,
                    payload=MemWrite(addrs=addrs, values=wordsT,
                                     counter=counter),
                    inject_rate=rate)
    # staging DMA for the remote-bound share, pipelined with injection
    yield from api.vic.pcie.dma_write(nf * 2 * rows * (n - rows) * 8)
    yield from api.wait_counter_zero(counter)
    yield from api.drain_overlapped(nf * field_words)
    words = api.vic.memory.read_range(0, nf * field_words)
    return [w2c(words[f * field_words:(f + 1) * field_words], (rows, n))
            for f in range(nf)]
