"""Distributed sparse matrix-vector multiplication (power iteration).

The paper's introduction names "sparse matrices" among the pointer-based
structures whose irregular access patterns motivate the Data Vortex;
this kernel makes that workload concrete: repeated ``y = A x`` over the
adjacency matrix of a Kronecker graph (power iteration — the core of
PageRank/eigensolvers), row-distributed.

The communication is the classic irregular halo: each rank's rows touch
a scattered, graph-dependent subset of remote ``x`` entries.

* **MPI version** — per-iteration ``alltoallv`` of exactly the needed
  entries, plus an ``allreduce`` for the normalisation;
* **Data Vortex version** — each rank *pushes* the entries its peers
  need straight into their DV memory (source-aggregated fine-grained
  writes under double-buffered parity counters, the heat-app idiom) and
  reduces the norm with all-to-all single-word writes.  No barrier in
  the steady state.

The exchange *schedule* (who needs what) is static per matrix and is
computed during setup, outside the timed region — exactly how real
sparse solvers amortise it.

Validation: the distributed iterate equals ``scipy.sparse`` power
iteration on the full matrix to round-off.
"""

from __future__ import annotations

from typing import Dict

import numpy as np
import scipy.sparse as sp

from repro.core.cluster import ClusterSpec, run_spmd
from repro.core.context import RankContext
from repro.kernels.kronecker import kronecker_edges
from repro.sim.rng import rng_for

_CTR_X_EVEN = 36
_CTR_X_ODD = 37
_CTR_NORM_EVEN = 38
_CTR_NORM_ODD = 39


def build_matrix(scale: int, edgefactor: int, seed: int) -> sp.csr_matrix:
    """Symmetric adjacency matrix of a Kronecker graph (float64)."""
    rng = rng_for(seed, "spmv", scale)
    edges = kronecker_edges(scale, edgefactor, rng)
    n = 1 << scale
    not_loop = edges[0] != edges[1]
    src = np.concatenate([edges[0][not_loop], edges[1][not_loop]])
    dst = np.concatenate([edges[1][not_loop], edges[0][not_loop]])
    a = sp.csr_matrix((np.ones(src.size), (src, dst)), shape=(n, n))
    a.sum_duplicates()
    return a


def serial_power_iteration(a: sp.csr_matrix, x0: np.ndarray,
                           iters: int) -> np.ndarray:
    """Reference: normalised power iteration with scipy."""
    x = x0.copy()
    for _ in range(iters):
        y = a @ x
        x = y / np.linalg.norm(y)
    return x


def _exchange_plan(a: sp.csr_matrix, rank: int, size: int):
    """Static halo schedule for one rank.

    Returns (needed_by_peer, wanted_from_peer): per-peer sorted global
    index arrays — which of *my* x entries each peer needs, and which of
    each peer's entries my rows touch.
    """
    n = a.shape[0]
    block = (n + size - 1) // size
    lo, hi = rank * block, min((rank + 1) * block, n)
    my_rows = a[lo:hi]
    touched = np.unique(my_rows.indices)
    wanted = [touched[(touched >= p * block)
                      & (touched < min((p + 1) * block, n))]
              for p in range(size)]
    # who needs mine: peers whose rows touch my column range
    needed = []
    for p in range(size):
        plo, phi = p * block, min((p + 1) * block, n)
        prows = a[plo:phi]
        t = np.unique(prows.indices)
        needed.append(t[(t >= lo) & (t < hi)])
    return needed, wanted, (lo, hi, block)


def run_spmv(spec: ClusterSpec, fabric: str, *, scale: int = 10,
             edgefactor: int = 8, iters: int = 5,
             validate: bool = False) -> Dict[str, object]:
    """Run distributed power iteration; reports sustained GFLOP/s
    (2 flops per stored nonzero per iteration)."""
    if iters < 1:
        raise ValueError("need at least one iteration")
    P = spec.n_nodes
    a = build_matrix(scale, edgefactor, spec.seed)
    n = a.shape[0]
    rng = rng_for(spec.seed, "spmv-x0")
    x0 = rng.random(n)

    def program(ctx: RankContext):
        needed, wanted, (lo, hi, block) = _exchange_plan(
            a, ctx.rank, ctx.size)
        rows = a[lo:hi]
        nnz = rows.nnz
        x_full = np.zeros(n)
        x_full[lo:hi] = x0[lo:hi]
        peers = [p for p in range(P) if p != ctx.rank]

        if fabric == "dv":
            api = ctx.dv
            # DV-memory layout: parity-doubled halo region; entry for
            # global index g from peer p lands at a fixed slot
            recv_from = {p: wanted[p] for p in peers if wanted[p].size}
            slot_of = {}
            off = 0
            for p, idxs in recv_from.items():
                for g in idxs:
                    slot_of[int(g)] = off
                    off += 1
            stride = max(off, 1)
            expected = off
            my_norm_base = 2 * stride

            # Static setup: my entries' addresses inside every peer's
            # (parity-doubled) halo region and that peer's strides.  In
            # a real code these are exchanged once at setup; here every
            # rank derives them from the shared matrix, outside the
            # timed region.
            send_plan = []   # (peer, my_indices, addrs0, peer_stride)
            peer_stride = {}
            for p in peers:
                pw = _exchange_plan(a, p, ctx.size)[1]
                addr_map = {}
                o = 0
                for q in range(P):
                    if q == p:
                        continue
                    for g in pw[q]:
                        addr_map[int(g)] = o
                        o += 1
                peer_stride[p] = max(o, 1)
                mine_for_p = needed[p]
                if not mine_for_p.size:
                    continue
                addrs0 = np.array([addr_map[int(g)]
                                   for g in mine_for_p], np.int64)
                send_plan.append((p, mine_for_p, addrs0,
                                  peer_stride[p]))
            slot_idx = np.array(sorted(slot_of, key=slot_of.get),
                                np.int64)

            yield from api.set_counter(_CTR_X_EVEN, expected)
            yield from api.set_counter(_CTR_X_ODD, expected)
            if P > 1:
                yield from api.set_counter(_CTR_NORM_EVEN, P - 1)
                yield from api.set_counter(_CTR_NORM_ODD, P - 1)
            yield from ctx.barrier()
            ctx.mark("t0")
            for it in range(iters):
                parity = it % 2
                ctr = _CTR_X_EVEN if parity == 0 else _CTR_X_ODD
                base = parity * stride
                # push my entries into every peer's halo region
                for p, idxs, addrs0, p_stride in send_plan:
                    yield from api.send_batch(
                        np.full(idxs.size, p),
                        addrs0 + parity * p_stride,
                        x_full[idxs].view(np.uint64),
                        counter=ctr, cached_headers=True, via="dma")
                if expected:
                    yield from api.wait_counter_zero(ctr)
                    yield from api.drain_overlapped(expected)
                    words = api.vic.memory.read_range(base, expected)
                    x_full[slot_idx] = words.view(np.float64)
                    yield from api.set_counter(ctr, expected)
                # local SpMV
                y = rows @ x_full
                yield from ctx.compute(flops=2.0 * nnz,
                                       stream_bytes=12.0 * nnz,
                                       dispatches=1)
                # norm: all-to-all single-word partial sums, landing at
                # each peer's own norm region (2 * its stride)
                part = float(y @ y)
                if P > 1:
                    nctr = (_CTR_NORM_EVEN if parity == 0
                            else _CTR_NORM_ODD)
                    word = np.float64(part).view(np.uint64)
                    dests, naddrs = [], []
                    for p in peers:
                        dests.append(p)
                        naddrs.append(2 * peer_stride[p] + parity * P
                                      + ctx.rank)
                    yield from api.send_batch(
                        np.array(dests), np.array(naddrs),
                        np.full(len(dests), word), counter=nctr,
                        cached_headers=True, via="dma")
                    yield from api.wait_counter_zero(nctr)
                    yield from api.set_counter(nctr, P - 1)
                    nb = my_norm_base + parity * P
                    slot = api.vic.memory.read_range(nb, P)
                    slot[ctx.rank] = word
                    norm = float(np.sqrt(
                        slot.view(np.float64).sum()))
                else:
                    norm = float(np.sqrt(part))
                x_full[lo:hi] = y / norm
            elapsed = ctx.since("t0")
            yield from ctx.barrier()
            return {"elapsed": elapsed, "x": x_full[lo:hi].copy()}

        # ---- MPI version ------------------------------------------------
        mpi = ctx.mpi
        yield from mpi.barrier()
        ctx.mark("t0")
        for it in range(iters):
            chunks = [x_full[needed[p]] if p != ctx.rank
                      else np.empty(0) for p in range(P)]
            got = yield from mpi.alltoallv(chunks)
            for p in peers:
                if wanted[p].size:
                    x_full[wanted[p]] = got[p]
            y = rows @ x_full
            yield from ctx.compute(flops=2.0 * nnz,
                                   stream_bytes=12.0 * nnz,
                                   dispatches=1)
            total = yield from mpi.allreduce(float(y @ y),
                                             lambda s, t: s + t)
            x_full[lo:hi] = y / np.sqrt(total)
        elapsed = ctx.since("t0")
        yield from mpi.barrier()
        return {"elapsed": elapsed, "x": x_full[lo:hi].copy()}

    res = run_spmd(spec, program, "dv" if fabric == "dv" else "mpi")
    elapsed = max(v["elapsed"] for v in res.values)
    out: Dict[str, object] = {
        "fabric": fabric, "n_nodes": P, "n": n, "nnz": int(a.nnz),
        "iters": iters, "elapsed_s": elapsed,
        "gflops": 2.0 * a.nnz * iters / elapsed / 1e9,
    }
    if validate:
        x = np.concatenate([v["x"] for v in res.values])[:n]
        ref = serial_power_iteration(a, x0, iters)
        out["max_error"] = float(np.max(np.abs(x - ref)))
        out["valid"] = bool(np.allclose(x, ref, atol=1e-9))
    return out
