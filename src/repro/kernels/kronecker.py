"""Graph500 Kronecker (R-MAT style) graph generator.

Generates the benchmark's scale-free edge list with the standard
initiator probabilities A=0.57, B=0.19, C=0.19, D=0.05, then applies the
spec's vertex permutation so that vertex ids carry no locality.  Fully
vectorised: one ``(2, M)`` int64 array, no Python-level per-edge loops.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

#: Graph500 initiator matrix probabilities.
A, B, C = 0.57, 0.19, 0.19


def kronecker_edges(scale: int, edgefactor: int = 16,
                    rng: Optional[np.random.Generator] = None,
                    permute: bool = True) -> np.ndarray:
    """Generate the Graph500 edge list.

    Parameters
    ----------
    scale:
        log2 of the vertex count.
    edgefactor:
        Average edges per vertex; M = edgefactor * 2**scale.
    rng:
        Random generator (seeded by the caller for determinism).
    permute:
        Apply the random vertex relabelling the spec requires.

    Returns
    -------
    ndarray of shape (2, M): start and end vertices of each edge.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    if edgefactor < 1:
        raise ValueError("edgefactor must be >= 1")
    rng = rng or np.random.default_rng(0)
    n = 1 << scale
    m = edgefactor * n

    ij = np.zeros((2, m), dtype=np.int64)
    ab = A + B
    c_norm = C / (1.0 - ab)
    a_norm = A / ab
    for ib in range(scale):
        # one Kronecker refinement level, vectorised over all edges
        ii_bit = rng.random(m) > ab
        jj_bit = rng.random(m) > np.where(ii_bit, c_norm, a_norm)
        ij[0] += (1 << ib) * ii_bit
        ij[1] += (1 << ib) * jj_bit

    if permute:
        perm = rng.permutation(n)
        ij = perm[ij]
        ij = ij[:, rng.permutation(m)]
    return ij


def degrees(edges: np.ndarray, n_vertices: int) -> np.ndarray:
    """Undirected degree of every vertex (self-loops count once)."""
    deg = np.zeros(n_vertices, np.int64)
    np.add.at(deg, edges[0], 1)
    not_loop = edges[0] != edges[1]
    np.add.at(deg, edges[1][not_loop], 1)
    return deg


def degree_summary(edges: np.ndarray, n_vertices: int) -> dict:
    """Degree-skew summary of an edge list (Graph500 graphs are
    scale-free, so hub vertices dominate the traffic a BFS induces).

    Returns ``max_degree``, ``mean_degree``, ``max_over_mean`` (the
    hub-dominance ratio) and the Gini coefficient of the degree
    distribution — 0 for perfectly even degrees, → 1 as a few hubs
    hold all the edges.
    """
    deg = degrees(edges, n_vertices)
    total = float(deg.sum())
    if total == 0:
        return {"max_degree": 0, "mean_degree": 0.0,
                "max_over_mean": 0.0, "gini": 0.0}
    mean = total / n_vertices
    x = np.sort(deg).astype(np.float64)
    n = x.size
    gini = float((2.0 * np.sum(np.arange(1, n + 1) * x))
                 / (n * x.sum()) - (n + 1) / n)
    return {"max_degree": int(deg.max()),
            "mean_degree": float(mean),
            "max_over_mean": float(deg.max() / mean),
            "gini": gini}


def to_csr(edges: np.ndarray, n_vertices: int
           ) -> Tuple[np.ndarray, np.ndarray]:
    """Symmetrised CSR adjacency (``offsets``, ``targets``) with
    self-loops removed and duplicates kept (as Graph500 allows)."""
    not_loop = edges[0] != edges[1]
    src = np.concatenate([edges[0][not_loop], edges[1][not_loop]])
    dst = np.concatenate([edges[1][not_loop], edges[0][not_loop]])
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    offsets = np.zeros(n_vertices + 1, np.int64)
    np.add.at(offsets, src + 1, 1)
    np.cumsum(offsets, out=offsets)
    return offsets, dst
