"""Distributed 1-D FFT (paper §VI, Fig. 7) — the four-step algorithm.

N = n1 * n2 points, viewed as an n1 x n2 matrix A with
``A[j1, j2] = x[j1 + n1*j2]``:

1. FFT of length n2 along each row (local; rows are block-distributed);
2. twiddle multiplication ``A[j1, k2] *= w_N^(j1*k2)`` (local);
3. global transpose (the communication step);
4. FFT of length n1 along each column (local after the transpose).

The output element ``X[k2 + n2*k1]`` is then found at ``C[k1, k2]`` with
columns k2 block-distributed — verified against ``numpy.fft.fft`` of the
gathered input.

Communication:

* **MPI** — ``alltoall`` of contiguous sub-blocks plus local pack/unpack
  (the reference HPCC structure);
* **Data Vortex** — the transpose is *folded into the communication*:
  each rank DMAs its block into VIC memory once and scatters words
  directly to the transposed addresses in the destination VICs' DV
  memory, so no separate pack/unpack pass exists (the paper's §VI
  "natural scatter/gather capabilities" argument).  Completion uses a
  preset group counter + hardware barrier.
"""

from __future__ import annotations

from typing import Dict, Generator

import numpy as np

from repro.core.cluster import ClusterSpec, run_spmd
from repro.core.context import RankContext
from repro.core.metrics import fft1d_flops, gflops_fft1d

_CTR_FFT = 40


def _twiddle(block: np.ndarray, j1_offset: int, n_total: int) -> np.ndarray:
    """Twiddle factors for rows [j1_offset, j1_offset+rows) of the matrix."""
    rows, cols = block.shape
    j1 = np.arange(j1_offset, j1_offset + rows)[:, None]
    k2 = np.arange(cols)[None, :]
    return block * np.exp(-2j * np.pi * (j1 * k2) / n_total)


def serial_fft_reference(x: np.ndarray) -> np.ndarray:
    """numpy reference for validation."""
    return np.fft.fft(x)


def make_input(seed: int, n_points: int) -> np.ndarray:
    """The benchmark's random complex input vector."""
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(n_points)
            + 1j * rng.standard_normal(n_points))


def _complex_to_words(z: np.ndarray) -> np.ndarray:
    """View a complex128 array as pairs of 64-bit payload words."""
    return z.view(np.float64).view(np.uint64).ravel()


def _words_to_complex(w: np.ndarray) -> np.ndarray:
    return w.view(np.float64).view(np.complex128)


def _fft_program(ctx: RankContext, x: np.ndarray, n1: int, n2: int,
                 fabric: str) -> Generator:
    """SPMD body shared by both fabrics; returns this rank's output
    columns and the timed duration."""
    P = ctx.size
    N = n1 * n2
    rows = n1 // P          # rows of A this rank owns
    cols = n2 // P          # columns of C this rank owns after transpose
    r0 = ctx.rank * rows
    # Step 0: local block A[r0:r0+rows, :], A[j1, j2] = x[j1 + n1*j2]
    block = x.reshape(n2, n1).T[r0:r0 + rows].copy()

    yield from ctx.barrier()
    ctx.mark("t0")

    # Step 1: row FFTs (length n2), charged at 5 n log n flops each
    block = np.fft.fft(block, axis=1)
    yield from ctx.compute(flops=rows * fft1d_flops(n2), dispatches=1)
    # Step 2: twiddles (6 flops per point: complex multiply)
    block = _twiddle(block, r0, N)
    yield from ctx.compute(flops=6.0 * rows * n2, dispatches=1)

    # Step 3: transpose so this rank ends with columns
    # [rank*cols, (rank+1)*cols) of the n1 x n2 matrix.
    if fabric == "mpi":
        mpi = ctx.mpi
        # pack: column-block d gets my rows of its columns
        chunks = [np.ascontiguousarray(block[:, d * cols:(d + 1) * cols])
                  for d in range(P)]
        yield from ctx.compute(stream_bytes=2 * block.nbytes, dispatches=1)
        got = yield from mpi.alltoall(chunks)
        # unpack into (n1, cols)
        mine = np.concatenate(got, axis=0)
        yield from ctx.compute(stream_bytes=2 * mine.nbytes, dispatches=1)
    else:
        api = ctx.dv
        # incoming words from the P-1 other ranks; my own sub-block
        # never touches the switch (it moves VIC-locally)
        expected_words = 2 * (n1 - rows) * cols
        yield from api.set_counter(_CTR_FFT, expected_words)
        yield from ctx.barrier()
        # scatter straight to transposed addresses at each destination:
        # dest d's DV memory holds an (n1, cols) block at word address
        # 2*(j1*cols + (j2 - d*cols)).  The staging DMA, switch
        # injection and receive-side drain are all pipelined: packets
        # stream into the switch as the DMA delivers them.
        from repro.dv.vic import MemWrite
        rate = api._inject_rate("dma", True)
        # staggered destination order: rank r starts at r+1, so ejection
        # ports receive balanced streams instead of all ranks hammering
        # destination 0 first
        for d in [(ctx.rank + 1 + i) % P for i in range(P)]:
            sub = np.ascontiguousarray(block[:, d * cols:(d + 1) * cols])
            words = _complex_to_words(sub)
            j1 = np.arange(r0, r0 + rows)[:, None, None]
            j2l = np.arange(cols)[None, :, None]
            half = np.arange(2)[None, None, :]
            addrs = (2 * (j1 * cols + j2l) + half).ravel()
            if d == ctx.rank:
                # own sub-block: a host-memory transpose — it never
                # crosses PCIe or the switch
                api.vic.memory.scatter(addrs, words)
                yield from ctx.compute(stream_bytes=2 * words.nbytes)
            else:
                api.network.transmit(
                    ctx.rank, d, words.size,
                    payload=MemWrite(addrs=addrs, values=words,
                                     counter=_CTR_FFT),
                    inject_rate=rate)
        # the host blocks for the remote-bound DMA share (concurrent
        # with switch injection)
        yield from api.vic.pcie.dma_write(
            2 * rows * (n2 - cols) * 8)
        yield from api.wait_counter_zero(_CTR_FFT)
        # receive side: overlapped multi-buffered drain into host memory
        yield from api.drain_overlapped(2 * n1 * cols)
        mine = _words_to_complex(
            api.vic.memory.read_range(0, 2 * n1 * cols)).reshape(n1, cols)

    # Step 4: column FFTs (length n1)
    mine = np.fft.fft(mine, axis=0)
    yield from ctx.compute(flops=cols * fft1d_flops(n1), dispatches=1)

    yield from ctx.barrier()
    elapsed = ctx.since("t0")
    return {"elapsed": elapsed, "out": mine}


def run_fft1d(spec: ClusterSpec, fabric: str, *, log2_points: int = 16,
              validate: bool = False) -> Dict[str, object]:
    """Run the distributed FFT benchmark.

    ``log2_points`` sets N = 2**log2_points (the paper used 2**33; the
    simulation default is scaled down, with the same four-step structure
    and communication volume per point).
    """
    P = spec.n_nodes
    N = 1 << log2_points
    # factor N = n1 * n2 with both divisible by P
    half = log2_points // 2
    n1, n2 = 1 << half, 1 << (log2_points - half)
    if n1 % P or n2 % P:
        raise ValueError(
            f"2^{half} and 2^{log2_points - half} must both be divisible "
            f"by n_nodes={P} (power-of-two node counts only)")
    x = make_input(spec.seed, N)

    def program(ctx):
        return (yield from _fft_program(ctx, x, n1, n2, fabric))

    res = run_spmd(spec, program, fabric)
    elapsed = max(v["elapsed"] for v in res.values)
    out: Dict[str, object] = {
        "fabric": fabric,
        "n_nodes": P,
        "n_points": N,
        "elapsed_s": elapsed,
        "gflops": gflops_fft1d(N, elapsed),
    }
    if validate:
        # assemble X[k2 + n2*k1] = C[k1, k2]: row-major C is exactly X
        C = np.concatenate([v["out"] for v in res.values], axis=1)
        X = np.ascontiguousarray(C).reshape(-1)
        ref = serial_fft_reference(x)
        out["max_error"] = float(np.max(np.abs(X - ref)))
        out["valid"] = bool(np.allclose(X, ref, atol=1e-6 * N))
    return out
