"""Ping-pong messaging micro-benchmark (paper §V, Fig. 3).

Two nodes bounce a fixed-length message back and forth; the reported
bandwidth is the payload volume divided by the one-way time, including
the receiver's copy of the message from the network adapter into host
memory (as the paper requires).

Four variants match Fig. 3's series:

* ``dwr_nocached`` — header and payload written from host memory via
  programmed I/O;
* ``dwr_cached``  — destination headers pre-cached in the sending VIC's
  DV memory, halving the PCIe traffic per packet;
* ``dma_cached``  — DMA from host memory with cached headers, receive
  side drained by overlapped DMA;
* ``mpi``         — MPI send/recv over InfiniBand.
"""

from __future__ import annotations

from typing import Dict, Generator

import numpy as np

from repro.core.cluster import ClusterSpec, run_spmd
from repro.core.context import RankContext
from repro.core.metrics import bandwidth_gbs

PINGPONG_MODES = ("dwr_nocached", "dwr_cached", "dma_cached", "mpi")

_CTR_PING = 10   # counter counting rank0 -> rank1 words
_CTR_PONG = 11   # counter counting rank1 -> rank0 words

#: payloads at or below this use a PIO read-out; larger ones use the
#: multi-buffered DMA drain
_PIO_READOUT_WORDS = 64
#: DMA drain double-buffer chunk (words): with in/out DMA overlapped
#: (SS III), only the final chunk's drain is exposed on the critical path
_DRAIN_CHUNK_WORDS = 4096


def _recv_copy(api, n_words: int):
    """Copy a received message from the VIC into host memory.

    Mirrors what the paper's benchmark does: small messages are pulled
    with one programmed-I/O read; large ones are drained by overlapped,
    multi-buffered DMA, so only the last buffer's drain shows up after
    the group counter hits zero.
    """
    if n_words <= _PIO_READOUT_WORDS:
        yield from api.vic.pcie.direct_read(n_words * 8)
    else:
        residue = min(n_words, _DRAIN_CHUNK_WORDS)
        yield from api.vic.pcie.dma_read(residue * 8)
    api.vic.memory.read_range(0, n_words)  # functional copy, no charge


def _dv_pingpong(ctx: RankContext, n_words: int, iters: int,
                 cached: bool, via: str) -> Generator:
    """DV side: rank 0 sends, rank 1 echoes; both copy received payloads
    into host memory before replying."""
    api = ctx.dv
    vals = np.arange(n_words, dtype=np.uint64) + ctx.rank
    addrs = np.arange(n_words)
    if cached:
        yield from api.precache_headers(n_words)
    if ctx.rank == 0:
        yield from api.set_counter(_CTR_PONG, n_words)
    elif ctx.rank == 1:
        yield from api.set_counter(_CTR_PING, n_words)
    yield from ctx.barrier()
    ctx.mark("t0")
    for _ in range(iters):
        if ctx.rank == 0:
            yield from api.send_words(1, addrs, vals, counter=_CTR_PING,
                                      cached_headers=cached, via=via)
            yield from api.wait_counter_zero(_CTR_PONG)
            yield from api.set_counter(_CTR_PONG, n_words)
            # copy the echoed message from the VIC into host memory
            yield from _recv_copy(api, n_words)
        elif ctx.rank == 1:
            yield from api.wait_counter_zero(_CTR_PING)
            yield from api.set_counter(_CTR_PING, n_words)
            yield from _recv_copy(api, n_words)
            yield from api.send_words(0, addrs, vals, counter=_CTR_PONG,
                                      cached_headers=cached, via=via)
    if ctx.rank > 1:
        return None
    if ctx.rank == 1:
        # rank 1 finishes after its last send's local completion; rank 0
        # holds the authoritative round-trip clock
        return None
    elapsed = ctx.since("t0")
    return elapsed


def _mpi_pingpong(ctx: RankContext, n_words: int, iters: int) -> Generator:
    mpi = ctx.mpi
    nbytes = n_words * 8
    msg = np.arange(n_words, dtype=np.uint64)
    yield from mpi.barrier()
    ctx.mark("t0")
    for _ in range(iters):
        if ctx.rank == 0:
            yield from mpi.send(1, msg, nbytes=nbytes)
            yield from mpi.recv(1)
        elif ctx.rank == 1:
            yield from mpi.recv(0)
            yield from mpi.send(0, msg, nbytes=nbytes)
    if ctx.rank != 0:
        return None
    return ctx.since("t0")


def run_pingpong(spec: ClusterSpec, mode: str, n_words: int,
                 iters: int = 8) -> Dict[str, float]:
    """Run one ping-pong configuration; returns bandwidth and timing.

    Returns a dict with ``bandwidth`` (bytes/s, one-way payload rate),
    ``bandwidth_gbs``, and ``one_way_s``.
    """
    if mode not in PINGPONG_MODES:
        raise ValueError(f"mode must be one of {PINGPONG_MODES}")
    if n_words < 1:
        raise ValueError("n_words must be >= 1")
    if spec.n_nodes < 2:
        raise ValueError("ping-pong needs at least 2 nodes")

    if mode == "mpi":
        def program(ctx):
            return (yield from _mpi_pingpong(ctx, n_words, iters))
        res = run_spmd(spec, program, "mpi")
    else:
        cached = mode != "dwr_nocached"
        via = "dma" if mode == "dma_cached" else "direct"

        def program(ctx):
            return (yield from _dv_pingpong(ctx, n_words, iters, cached,
                                            via))
        res = run_spmd(spec, program, "dv")

    elapsed = res.values[0]
    one_way = elapsed / (2 * iters)
    payload = n_words * 8
    return {
        "mode": mode,
        "n_words": n_words,
        "one_way_s": one_way,
        "bandwidth": payload / one_way,
        "bandwidth_gbs": bandwidth_gbs(payload, one_way),
    }
