"""GUPS — random-access update rate (paper §VI, Figs. 5 and 6).

A table of 64-bit words is block-distributed; every rank issues XOR
updates at uniformly random *global* indices.  Per the HPCC rules the
implementation may look ahead at most 1024 updates, which caps how much
destination aggregation an MPI implementation can do — the property that
makes GUPS hostile to conventional fabrics.

* **MPI version** (mirrors the HPCC MPI benchmark): each 1024-update
  window is partitioned by owner and exchanged with ``alltoallv``; each
  round therefore costs P-1 small messages per rank plus collective
  software overhead, and gets slower per update as P grows.

* **Data Vortex version**: each window crosses PCIe as *one* DMA ("source
  aggregation") and the VIC scatters single-word packets straight to the
  owners' surprise FIFOs; the owner drains its FIFO between windows and
  applies updates locally.  Updates are packed ``local_index << 32 |
  value32`` into single 64-bit payloads — fine-grained traffic that plays
  to the switch.

Functional correctness is checked by replaying all updates serially:
XOR is commutative and associative, so the distributed table must match
exactly regardless of arrival order.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

import numpy as np

from repro.core.cluster import ClusterSpec, run_spmd
from repro.core.context import RankContext
from repro.core.metrics import mups
from repro.dv.vic import FifoPush
from repro.obs import registry as obsreg
from repro.sim.rng import rng_for

_CTR_COUNTS = 20    #: counter for the per-epoch count exchange
_CTR_DATA = 21      #: counter for data-word arrivals
_COUNT_BASE = 0     #: DV-memory slots [_COUNT_BASE + src] hold counts

_VAL_MASK = (1 << 32) - 1


def _make_updates(seed: int, rank: int, n_updates: int, table_words: int,
                  size: int, traffic=None) -> tuple:
    """Random global indices and 32-bit update values for one rank.

    With a :class:`~repro.traffic.TrafficModel` the *owning node* of
    each update is drawn from the model's destination distribution
    (Zipf/hotset/trace skew at node granularity — what the fabrics
    contend over) and the word within the owner's table stays uniform.
    ``traffic=None`` keeps the legacy uniform-global-index path
    byte-for-byte (the goldens pin it).
    """
    rng = rng_for(seed, "gups", rank)
    if traffic is None:
        total = table_words * size
        idx = rng.integers(0, total, n_updates, dtype=np.int64)
    else:
        owner = traffic.dist.draw(rng, n_updates, size, src=rank)
        local = rng.integers(0, table_words, n_updates, dtype=np.int64)
        idx = owner * table_words + local
    val = rng.integers(0, 1 << 32, n_updates, dtype=np.uint64)
    return idx, val


def _pack(local_idx: np.ndarray, val: np.ndarray) -> np.ndarray:
    return (local_idx.astype(np.uint64) << np.uint64(32)) | val


def _apply(table: np.ndarray, packed: np.ndarray) -> None:
    idx = (packed >> np.uint64(32)).astype(np.int64)
    np.bitwise_xor.at(table, idx, packed & np.uint64(_VAL_MASK))


def serial_gups_table(seed: int, size: int, table_words: int,
                      n_updates: int, traffic=None) -> np.ndarray:
    """Reference: the whole table after all ranks' updates, serially."""
    table = np.zeros(size * table_words, np.uint64)
    for r in range(size):
        idx, val = _make_updates(seed, r, n_updates, table_words, size,
                                 traffic)
        np.bitwise_xor.at(table, idx, val)
    return table


def _dv_gups(ctx: RankContext, table_words: int, n_updates: int,
             window: int, seed: int, aggregate: bool,
             traffic=None) -> Generator:
    api = ctx.dv
    P = ctx.size
    table = np.zeros(table_words, np.uint64)
    idx, val = _make_updates(seed, ctx.rank, n_updates, table_words, P,
                             traffic)
    owner = idx // table_words
    local = idx % table_words
    n_epochs = (n_updates + window - 1) // window
    _obs = obsreg.enabled()
    if _obs:
        m_epochs = obsreg.counter("kernels.gups.epochs", fabric="dv")
        m_local = obsreg.counter("kernels.gups.updates_local", fabric="dv")
        m_remote = obsreg.counter("kernels.gups.updates_remote",
                                  fabric="dv")

    yield from ctx.barrier()
    ctx.mark("t0")
    for e in range(n_epochs):
        lo, hi = e * window, min((e + 1) * window, n_updates)
        o, li, v = owner[lo:hi], local[lo:hi], val[lo:hi]
        mine = o == ctx.rank
        if _obs:
            m_epochs.inc()
            m_local.inc(int(mine.sum()))
            m_remote.inc(int((~mine).sum()))
        # local updates: random-access XORs into the host table
        _apply(table, _pack(li[mine], v[mine]))
        yield from ctx.compute(random_updates=int(mine.sum()),
                               dispatches=1)
        remote = ~mine
        if remote.any():
            packed = _pack(li[remote], v[remote])
            dests = o[remote]
            # fan the window out to the owners' FIFOs in one PCIe DMA
            order = np.argsort(dests, kind="stable")
            dests_s, packed_s = dests[order], packed[order]
            uniq, starts = np.unique(dests_s, return_index=True)
            bounds = list(starts[1:]) + [dests_s.size]
            yield from api._overhead()
            rate = api._inject_rate("dma", True)
            group_counts = np.diff(np.append(starts, dests_s.size))
            group_payloads = [FifoPush(packed_s[s0:s1])
                              for s0, s1 in zip(starts, bounds)]
            # one batched fan-out: reference impl loops transmit() with
            # identical arguments; the fast impl vectorises the pricing
            api.network.transmit_batch(ctx.rank, uniq, group_counts,
                                       group_payloads, inject_rate=rate,
                                       collect=False)
            if aggregate:
                yield from api._charge_tx("dma", int(remote.sum()), True)
            else:
                for s0, s1 in zip(starts, bounds):
                    yield from api._charge_tx("dma", int(s1 - s0), True)
        # opportunistically drain whatever has arrived
        arrived = api.fifo_take()
        if arrived.size:
            _apply(table, arrived)
            yield from ctx.compute(random_updates=arrived.size,
                                   dispatches=1)

    # ---- termination: exchange how many words each peer sent me ------
    # (one source-aggregated DMA carrying all P-1 count words)
    yield from api.set_counter(_CTR_COUNTS, P - 1)
    yield from ctx.barrier()
    sent_to = np.zeros(P, np.int64)
    np.add.at(sent_to, owner, 1)
    if P > 1:
        others = np.array([d for d in range(P) if d != ctx.rank])
        yield from api.send_batch(
            others, np.full(others.size, _COUNT_BASE + ctx.rank),
            sent_to[others].astype(np.uint64), counter=_CTR_COUNTS,
            cached_headers=True, via="dma")
    yield from api.wait_counter_zero(_CTR_COUNTS)
    counts = api.vic.memory.read_range(_COUNT_BASE, P).astype(np.int64)
    counts[ctx.rank] = 0
    expected = int(counts.sum())
    # drain until everything that was addressed to us has been applied
    while True:
        arrived = api.fifo_take()
        if arrived.size:
            _apply(table, arrived)
            yield from ctx.compute(random_updates=arrived.size,
                                   dispatches=1)
        if api.vic.fifo.total_pushed >= expected:
            # everything sent to us has landed; apply any residue
            residue = api.fifo_take()
            if residue.size:
                _apply(table, residue)
                yield from ctx.compute(random_updates=residue.size,
                                       dispatches=1)
            break
        yield from api.fifo_wait()
    yield from ctx.barrier()
    elapsed = ctx.since("t0")
    return {"elapsed": elapsed, "table": table}


def _agg_gups(ctx: RankContext, table_words: int, n_updates: int,
              window: int, seed: int, agg_spec,
              traffic=None) -> Generator:
    """GUPS through the destination-coalescing runtime (either fabric).

    Remote updates flow into the rank's :mod:`repro.agg` channel
    instead of being exchanged per 1024-update window: the watermark
    batches *across* windows — deliberately beyond the HPCC look-ahead
    cap, since the point of ``fig_agg`` is to measure what aggregation
    buys once the rule is relaxed (docs/aggregation.md).  XOR updates
    commute, so the validated table is identical to the legacy paths
    whatever the flush order.
    """
    from repro.agg.runtime import channel_for
    P = ctx.size
    table = np.zeros(table_words, np.uint64)
    idx, val = _make_updates(seed, ctx.rank, n_updates, table_words, P,
                             traffic)
    owner = idx // table_words
    local = idx % table_words
    n_epochs = (n_updates + window - 1) // window
    chan = channel_for(ctx, agg_spec, seed)
    _obs = obsreg.enabled()
    fabric = "dv" if ctx.dv is not None else "mpi"
    if _obs:
        m_epochs = obsreg.counter("kernels.gups.epochs", fabric=fabric)
        m_local = obsreg.counter("kernels.gups.updates_local",
                                 fabric=fabric)
        m_remote = obsreg.counter("kernels.gups.updates_remote",
                                  fabric=fabric)

    yield from ctx.barrier()
    ctx.mark("t0")
    for e in range(n_epochs):
        lo, hi = e * window, min((e + 1) * window, n_updates)
        o, li, v = owner[lo:hi], local[lo:hi], val[lo:hi]
        mine = o == ctx.rank
        if _obs:
            m_epochs.inc()
            m_local.inc(int(mine.sum()))
            m_remote.inc(int((~mine).sum()))
        _apply(table, _pack(li[mine], v[mine]))
        yield from ctx.compute(random_updates=int(mine.sum()),
                               dispatches=1)
        remote = ~mine
        if remote.any():
            packed = _pack(li[remote], v[remote])
            dests = o[remote]
            order = np.argsort(dests, kind="stable")
            dests_s, packed_s = dests[order], packed[order]
            uniq, starts = np.unique(dests_s, return_index=True)
            bounds = np.append(starts[1:], dests_s.size)
            for d, s0, s1 in zip(uniq, starts, bounds):
                yield from chan.put(int(d), packed_s[s0:s1])
        # opportunistically drain whatever frames have arrived
        arrived = yield from chan.drain()
        if arrived.size:
            _apply(table, arrived)
            yield from ctx.compute(random_updates=arrived.size,
                                   dispatches=1)

    # epoch settlement: final flushes, count exchange, drain-to-tally
    arrived, _ = yield from chan.complete()
    if arrived.size:
        _apply(table, arrived)
        yield from ctx.compute(random_updates=arrived.size,
                               dispatches=1)
    yield from ctx.barrier()
    elapsed = ctx.since("t0")
    return {"elapsed": elapsed, "table": table,
            "agg": chan.stats.as_dict()}


def _verbs_gups(ctx: RankContext, table_words: int, n_updates: int,
                window: int, seed: int, traffic=None) -> Generator:
    """GUPS over one-sided RDMA (paper §VIII's verbs alternative).

    Updates cannot be applied remotely (no remote XOR), so each rank
    RDMA-writes packed updates into a per-source staging ring at the
    owner and then advances a per-source tail counter; owners poll the
    tails between windows and apply locally.  Note how much more
    machinery this needs than either the MPI or the DV version — the
    paper's "substantially higher coding efforts" made concrete.
    """
    import numpy as np
    v = ctx.mpi.verbs
    P = ctx.size
    table = np.zeros(table_words, np.uint64)
    idx, val = _make_updates(seed, ctx.rank, n_updates, table_words, P,
                             traffic)
    owner = idx // table_words
    local = idx % table_words
    n_epochs = (n_updates + window - 1) // window

    # staging: one ring per source, big enough for everything it could
    # send; tails[src] counts words committed by src
    ring_cap = n_updates
    rings = np.zeros(P * ring_cap, np.float64)
    tails = np.zeros(P, np.float64)
    applied = np.zeros(P, np.int64)
    write_off = np.zeros(P, np.int64)   # my write offset per owner
    v.reg_mr("rings", rings)
    v.reg_mr("tails", tails)
    yield from ctx.mpi.barrier()
    ctx.mark("t0")

    def poll_and_apply():
        moved = 0
        for src in range(P):
            avail = int(tails[src])
            if avail > applied[src]:
                seg = rings[src * ring_cap + applied[src]:
                            src * ring_cap + avail]
                _apply(table, seg.view(np.uint64))
                moved += avail - applied[src]
                applied[src] = avail
        return moved

    for e in range(n_epochs):
        lo, hi = e * window, min((e + 1) * window, n_updates)
        o, li, vv = owner[lo:hi], local[lo:hi], val[lo:hi]
        mine = o == ctx.rank
        _apply(table, _pack(li[mine], vv[mine]))
        yield from ctx.compute(random_updates=int(mine.sum()),
                               dispatches=1)
        for d in range(P):
            sel = o == d
            if d == ctx.rank or not sel.any():
                continue
            packed = _pack(li[sel], vv[sel]).view(np.float64)
            # high-rate idiom: unsignaled data + unsignaled tail bump;
            # RC ordering keeps tail behind its data
            yield from v.rdma_write(
                d, "rings", ctx.rank * ring_cap + int(write_off[d]),
                packed, signaled=False)
            write_off[d] += packed.size
            yield from v.rdma_write(
                d, "tails", ctx.rank,
                np.array([float(write_off[d])]), signaled=False)
        moved = poll_and_apply()
        if moved:
            yield from ctx.compute(random_updates=moved, dispatches=1)

    # termination: one *signaled* write per destination fences all the
    # unsignaled traffic on that connection, then a barrier publishes
    # every tail, then one final drain
    for d in range(P):
        if d != ctx.rank and write_off[d]:
            yield from v.rdma_write(
                d, "tails", ctx.rank,
                np.array([float(write_off[d])]), signaled=True)
    yield from ctx.mpi.barrier()
    moved = poll_and_apply()
    if moved:
        yield from ctx.compute(random_updates=moved, dispatches=1)
    yield from ctx.mpi.barrier()
    elapsed = ctx.since("t0")
    return {"elapsed": elapsed, "table": table}


def _mpi_gups(ctx: RankContext, table_words: int, n_updates: int,
              window: int, seed: int, traffic=None) -> Generator:
    mpi = ctx.mpi
    P = ctx.size
    table = np.zeros(table_words, np.uint64)
    idx, val = _make_updates(seed, ctx.rank, n_updates, table_words, P,
                             traffic)
    owner = idx // table_words
    local = idx % table_words
    n_epochs = (n_updates + window - 1) // window
    _obs = obsreg.enabled()
    if _obs:
        m_epochs = obsreg.counter("kernels.gups.epochs", fabric="mpi")
        m_applied = obsreg.counter("kernels.gups.updates_applied",
                                   fabric="mpi")

    yield from ctx.barrier()
    ctx.mark("t0")
    for e in range(n_epochs):
        lo, hi = e * window, min((e + 1) * window, n_updates)
        o, li, v = owner[lo:hi], local[lo:hi], val[lo:hi]
        packed = _pack(li, v)
        chunks = [packed[o == d] for d in range(P)]
        yield from ctx.compute(dispatches=1,
                               stream_bytes=packed.nbytes)
        got = yield from ctx.timed(
            "mpi", mpi.alltoallv(chunks), "gups-exchange")
        for src, arr in enumerate(got):
            if arr is not None and len(arr):
                _apply(table, arr)
                ctx.tracer.message(src, ctx.rank, ctx.now, arr.nbytes)
        n_applied = sum(len(a) for a in got if a is not None)
        if _obs:
            m_epochs.inc()
            m_applied.inc(n_applied)
        yield from ctx.compute(random_updates=n_applied, dispatches=1)
    yield from ctx.timed("mpi", mpi.barrier(), "final")
    elapsed = ctx.since("t0")
    return {"elapsed": elapsed, "table": table}


def run_gups(spec: ClusterSpec, fabric: str, *, table_words: int = 1 << 14,
             n_updates: Optional[int] = None, window: int = 1024,
             aggregate: bool = True, validate: bool = False
             ) -> Dict[str, object]:
    """Run GUPS on one fabric; returns update rates (and tables when
    validating).

    Parameters mirror the HPCC setup scaled for simulation: the table has
    ``table_words`` words per node (weak scaling) and each rank issues
    ``n_updates`` updates (default: table_words).
    """
    if n_updates is None:
        n_updates = table_words
    if window < 1 or window > 1024:
        raise ValueError("HPCC rules: look-ahead window must be <= 1024")
    seed = spec.seed
    traffic = spec.traffic

    from repro import agg as aggmod
    agg_spec = aggmod.resolve_spec(spec.aggregation)
    if agg_spec is not None and fabric == "verbs":
        raise ValueError(
            "aggregation is not supported on the raw verbs path "
            '(use fabric="dv" or "mpi")')

    if agg_spec is not None:
        def program(ctx):
            return (yield from _agg_gups(ctx, table_words, n_updates,
                                         window, seed, agg_spec,
                                         traffic))
    elif fabric == "dv":
        def program(ctx):
            return (yield from _dv_gups(ctx, table_words, n_updates,
                                        window, seed, aggregate,
                                        traffic))
    elif fabric == "verbs":
        def program(ctx):
            return (yield from _verbs_gups(ctx, table_words, n_updates,
                                           window, seed, traffic))
    else:
        def program(ctx):
            return (yield from _mpi_gups(ctx, table_words, n_updates,
                                         window, seed, traffic))

    res = run_spmd(spec, program, "dv" if fabric == "dv" else "mpi")
    elapsed = max(v["elapsed"] for v in res.values)
    total_updates = n_updates * spec.n_nodes
    out: Dict[str, object] = {
        "fabric": fabric,
        "n_nodes": spec.n_nodes,
        "elapsed_s": elapsed,
        "mups_total": mups(total_updates, elapsed),
        "mups_per_pe": mups(total_updates, elapsed) / spec.n_nodes,
        "tracer": res.tracer,
    }
    if agg_spec is not None:
        from repro.agg.runtime import merge_stats
        out["agg"] = merge_stats(v["agg"] for v in res.values)
    if validate:
        got = np.concatenate([v["table"] for v in res.values])
        ref = serial_gups_table(seed, spec.n_nodes, table_words,
                                n_updates, traffic)
        out["valid"] = bool(np.array_equal(got, ref))
    return out
