"""Benchmark kernels (paper §V–VI), each implemented for both fabrics.

* :mod:`repro.kernels.pingpong` — fixed-length round-trip messaging in
  the paper's four variants (DWr/NoCached, DWr/Cached, DMA/Cached, MPI);
* :mod:`repro.kernels.barrier_bench` — global barrier latency at scale;
* :mod:`repro.kernels.gups` — Giga-updates-per-second with the HPCC
  1024-update aggregation limit;
* :mod:`repro.kernels.fft1d` — distributed 1-D FFT (four-step algorithm);
* :mod:`repro.kernels.fft2d` — distributed 2-D FFT;
* :mod:`repro.kernels.transpose` — the shared transpose primitive;
* :mod:`repro.kernels.kronecker` — Graph500 Kronecker graph generator;
* :mod:`repro.kernels.bfs` — level-synchronous distributed BFS
  (top-down and direction-optimising);
* :mod:`repro.kernels.spmv` — distributed sparse matrix-vector
  multiplication (power iteration).
"""

from repro.kernels.pingpong import run_pingpong, PINGPONG_MODES
from repro.kernels.barrier_bench import run_barrier_bench
from repro.kernels.gups import run_gups
from repro.kernels.fft1d import run_fft1d
from repro.kernels.fft2d import run_fft2d
from repro.kernels.kronecker import kronecker_edges
from repro.kernels.spmv import run_spmv
from repro.kernels.bfs import run_bfs

__all__ = [
    "PINGPONG_MODES",
    "kronecker_edges",
    "run_barrier_bench",
    "run_bfs",
    "run_fft1d",
    "run_fft2d",
    "run_gups",
    "run_pingpong",
    "run_spmv",
]
