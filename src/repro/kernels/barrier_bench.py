"""Global-barrier latency micro-benchmark (paper §V, Fig. 4).

Three implementations match Fig. 4's series:

* ``dv``      — the dvapi hardware-barrier intrinsic (2 reserved group
  counters, VIC-driven release broadcast);
* ``dv_fast`` — the paper's in-house all-to-all "Fast Barrier";
* ``mpi``     — MPI_Barrier over InfiniBand (Bruck dissemination).
"""

from __future__ import annotations

from typing import Dict

from repro.core.cluster import ClusterSpec, run_spmd
from repro.core.context import RankContext

BARRIER_IMPLS = ("dv", "dv_fast", "mpi")


def run_barrier_bench(spec: ClusterSpec, impl: str,
                      iters: int = 16) -> Dict[str, float]:
    """Measure mean barrier latency.

    Warm-up with one barrier, then time ``iters`` back-to-back barriers;
    the reported latency is the per-barrier mean of the slowest rank
    (every rank participates in every barrier, so the slowest rank's
    clock is the honest one).
    """
    if impl not in BARRIER_IMPLS:
        raise ValueError(f"impl must be one of {BARRIER_IMPLS}")
    if iters < 1:
        raise ValueError("iters must be >= 1")

    def program(ctx: RankContext):
        def one():
            if impl == "dv":
                return ctx.dv.barrier()
            if impl == "dv_fast":
                return ctx.dv.fast_barrier()
            return ctx.mpi.barrier()

        yield from one()          # warm-up
        ctx.mark("t0")
        for _ in range(iters):
            yield from one()
        return ctx.since("t0") / iters

    fabric = "mpi" if impl == "mpi" else "dv"
    res = run_spmd(spec, program, fabric)
    worst = max(res.values)
    return {
        "impl": impl,
        "n_nodes": spec.n_nodes,
        "latency_s": worst,
        "latency_us": worst * 1e6,
    }
