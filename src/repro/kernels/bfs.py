"""Distributed breadth-first search (paper §VI, Fig. 8 / Graph500).

Vertices are block-distributed; the search is level-synchronous.  At
every level each rank expands its local frontier and forwards
(child, parent) pairs to the child's owner.

* **MPI version** (Graph500 simple-reference style): per-destination
  buffers exchanged with ``alltoallv`` each level, then an ``allreduce``
  on the new-frontier size.  Aggregating by destination is exactly what
  the paper says is hard to do *well* here: most levels move small,
  skewed buffers dominated by per-message software overhead.

* **Data Vortex version**: each level's pairs stream to the owners'
  surprise FIFOs with source aggregation (one PCIe DMA per window, many
  destinations per window); level termination uses the paper's preset
  counter + hardware barrier idiom, exchanging exact word counts before
  the data flies.

Pairs are packed into single 64-bit payloads (child's local index in the
high half, parent's global id in the low half), so one update = one DV
packet — the fine-grained pattern the switch was designed for.

Validation follows the Graph500 rules: the parent array must form a tree
rooted at the search key whose edge levels differ by exactly one, and
must reach exactly the root's connected component (checked against a
serial CSR BFS).
"""

from __future__ import annotations

from typing import Dict, Generator, List

import numpy as np

from repro.core.cluster import ClusterSpec, run_spmd
from repro.core.context import RankContext
from repro.core.metrics import harmonic_mean, teps
from repro.kernels.kronecker import degrees, kronecker_edges, to_csr
from repro.sim.rng import rng_for

_CTR_COUNTS = 30
_CTR_DATA = 31
_SLOT_COUNTS = 64          # DV memory: per-src expected-words slots
_NO_PARENT = -1


# ------------------------------------------------------------ serial ref ---

def serial_bfs(offsets: np.ndarray, targets: np.ndarray,
               root: int) -> np.ndarray:
    """Reference BFS returning the parent array (root's parent = root)."""
    n = offsets.size - 1
    parent = np.full(n, _NO_PARENT, np.int64)
    parent[root] = root
    frontier = np.array([root], np.int64)
    while frontier.size:
        nxt: List[int] = []
        for v in frontier:
            nbrs = targets[offsets[v]:offsets[v + 1]]
            new = nbrs[parent[nbrs] == _NO_PARENT]
            # deduplicate within the level
            new = np.unique(new)
            parent[new] = v
            nxt.append(new)
        frontier = (np.unique(np.concatenate(nxt))
                    if nxt else np.empty(0, np.int64))
        frontier = frontier[frontier != _NO_PARENT]
    return parent


def validate_parent_tree(offsets: np.ndarray, targets: np.ndarray,
                         root: int, parent: np.ndarray) -> bool:
    """Graph500-style validation of a BFS parent array."""
    n = offsets.size - 1
    if parent[root] != root:
        return False
    visited = parent != _NO_PARENT
    # levels by walking up the tree (cycle-safe: cap at n steps)
    level = np.full(n, -1, np.int64)
    level[root] = 0
    for v in np.flatnonzero(visited):
        chain = []
        u = v
        for _ in range(n + 1):
            if level[u] >= 0:
                break
            chain.append(u)
            u = parent[u]
        else:
            return False  # cycle
        base = level[u]
        for i, w in enumerate(reversed(chain)):
            level[w] = base + i + 1
        # tree edges must exist in the graph
    for v in np.flatnonzero(visited):
        if v == root:
            continue
        p = parent[v]
        if not visited[p]:
            return False
        if level[v] != level[p] + 1:
            return False
        nbrs = targets[offsets[v]:offsets[v + 1]]
        if p not in nbrs:
            return False
    # reachability must match the serial reference exactly
    ref = serial_bfs(offsets, targets, root)
    return bool(np.array_equal(ref != _NO_PARENT, visited))


# ----------------------------------------------------------- distributed ---

def _partition(n_vertices: int, size: int) -> int:
    """Vertices per rank (block distribution, padded)."""
    return (n_vertices + size - 1) // size


def _pack_pairs(local_child: np.ndarray, parent: np.ndarray) -> np.ndarray:
    return ((local_child.astype(np.uint64) << np.uint64(32))
            | parent.astype(np.uint64))


def _unpack_pairs(packed: np.ndarray):
    child = (packed >> np.uint64(32)).astype(np.int64)
    parent = (packed & np.uint64((1 << 32) - 1)).astype(np.int64)
    return child, parent


class _LocalGraph:
    """One rank's share of the CSR graph."""

    def __init__(self, offsets: np.ndarray, targets: np.ndarray,
                 rank: int, size: int) -> None:
        n = offsets.size - 1
        self.block = _partition(n, size)
        self.lo = rank * self.block
        self.hi = min(self.lo + self.block, n)
        self.n_local = max(self.hi - self.lo, 0)
        self.offsets = offsets[self.lo:self.hi + 1] if self.n_local else \
            np.zeros(1, np.int64)
        self.targets = targets
        self.parent = np.full(self.n_local, _NO_PARENT, np.int64)

    def neighbours_of_frontier(self, frontier_local: np.ndarray):
        """(child_global, parent_global) pairs for the whole frontier."""
        if frontier_local.size == 0:
            return (np.empty(0, np.int64), np.empty(0, np.int64))
        counts = (self.offsets[frontier_local + 1]
                  - self.offsets[frontier_local])
        parents = np.repeat(frontier_local + self.lo, counts)
        idx = np.concatenate([
            np.arange(self.offsets[v], self.offsets[v + 1])
            for v in frontier_local]) if counts.sum() else \
            np.empty(0, np.int64)
        children = self.targets[idx]
        return children, parents

    def absorb(self, child_local: np.ndarray, parent_global: np.ndarray
               ) -> np.ndarray:
        """Mark unvisited children; returns the new local frontier."""
        if child_local.size == 0:
            return np.empty(0, np.int64)
        fresh = self.parent[child_local] == _NO_PARENT
        child_local, parent_global = (child_local[fresh],
                                      parent_global[fresh])
        # first writer wins within the batch
        uniq, first = np.unique(child_local, return_index=True)
        self.parent[uniq] = parent_global[first]
        return uniq


def _expand(ctx: RankContext, g: _LocalGraph, frontier: np.ndarray):
    """Shared per-level expansion; returns (dest_rank, packed_word)."""
    children, parents = g.neighbours_of_frontier(frontier)
    owner = children // g.block
    local_child = children % g.block
    packed = _pack_pairs(local_child, parents)
    return owner, packed, children.size


def _frontier_bitmap(g: _LocalGraph, frontier_local: np.ndarray,
                     n_vertices: int) -> np.ndarray:
    """This rank's share of the global frontier bitmap (uint64 words)."""
    words = (n_vertices + 63) // 64
    bm = np.zeros(words, np.uint64)
    glob = frontier_local + g.lo
    np.bitwise_or.at(bm, glob >> 6,
                     np.uint64(1) << (glob.astype(np.uint64)
                                      & np.uint64(63)))
    return bm


def _bottom_up_scan(g: _LocalGraph, bitmap: np.ndarray):
    """Bottom-up step: every unvisited local vertex checks whether any
    neighbour is in the (global) frontier bitmap; the first hit becomes
    its parent.  Fully vectorised.

    Returns (new_frontier_local, parents_global, edges_examined).
    """
    unvis = np.flatnonzero(g.parent == _NO_PARENT)
    if unvis.size == 0:
        return (np.empty(0, np.int64), np.empty(0, np.int64), 0)
    counts = (g.offsets[unvis + 1] - g.offsets[unvis])
    nz = counts > 0
    unvis, counts = unvis[nz], counts[nz]
    if unvis.size == 0:
        return (np.empty(0, np.int64), np.empty(0, np.int64), 0)
    total = int(counts.sum())
    starts = g.offsets[unvis]
    reset = np.repeat(np.cumsum(counts) - counts, counts)
    flat = np.arange(total) - reset + np.repeat(starts, counts)
    nbrs = g.targets[flat]
    in_frontier = ((bitmap[nbrs >> 6]
                    >> (nbrs.astype(np.uint64) & np.uint64(63)))
                   & np.uint64(1)).astype(bool)
    seg_start = np.cumsum(counts) - counts
    cand = np.where(in_frontier, np.arange(total), total)
    first = np.minimum.reduceat(cand, seg_start)
    hit = first < total
    return (unvis[hit], nbrs[first[hit]], total)


def _dv_bfs(ctx: RankContext, g: _LocalGraph, root: int,
            window: int) -> Generator:
    api = ctx.dv
    P = ctx.size
    from repro.dv.vic import FifoPush
    rate = api._inject_rate("dma", True)

    frontier = np.empty(0, np.int64)
    if g.lo <= root < g.hi:
        g.parent[root - g.lo] = root
        frontier = np.array([root - g.lo], np.int64)

    edges_traversed = 0
    while True:
        owner, packed, n_edges = _expand(ctx, g, frontier)
        yield from ctx.compute(stream_bytes=packed.nbytes * 3,
                               dispatches=1)
        mine = owner == ctx.rank
        remote = ~mine
        sent_to = np.zeros(P, np.int64)
        np.add.at(sent_to, owner[remote], 1)

        # 1. combined exchange: every peer gets two words — how many
        #    data words I will send it this level, and my frontier size
        #    (for global termination).  One source-aggregated DMA under
        #    a preset counter (2 packets from each of P-1 peers).
        if P > 1:
            yield from api.set_counter(_CTR_COUNTS, 2 * (P - 1))
            yield from ctx.barrier()
            others = np.array([d for d in range(P) if d != ctx.rank])
            dests = np.repeat(others, 2)
            addrs = np.tile([_SLOT_COUNTS + 2 * ctx.rank,
                             _SLOT_COUNTS + 2 * ctx.rank + 1],
                            others.size)
            vals = np.empty(2 * others.size, np.uint64)
            vals[0::2] = sent_to[others]
            vals[1::2] = frontier.size
            yield from api.send_batch(dests, addrs, vals,
                                      counter=_CTR_COUNTS,
                                      cached_headers=True, via="dma")
            yield from api.wait_counter_zero(_CTR_COUNTS)
            slots = api.vic.memory.read_range(
                _SLOT_COUNTS, 2 * P).astype(np.int64)
            counts, sizes = slots[0::2].copy(), slots[1::2].copy()
            counts[ctx.rank] = 0
            sizes[ctx.rank] = frontier.size
            expected = int(counts.sum())
            global_frontier = int(sizes.sum())
        else:
            expected = 0
            global_frontier = int(frontier.size)
        if global_frontier == 0:
            break
        edges_traversed += n_edges

        # 2. local updates
        local_new = []
        if mine.any():
            c, p = _unpack_pairs(packed[mine])
            yield from ctx.compute(random_updates=int(mine.sum()))
            local_new.append(g.absorb(c, p))

        # 3. data flight: preset, barrier, stream windows into the
        #    owners' surprise FIFOs, wait for the exact word count
        yield from api.set_counter(_CTR_DATA, expected)
        yield from ctx.barrier()
        if remote.any():
            dests = owner[remote]
            payloads = packed[remote]
            order = np.argsort(dests, kind="stable")
            dests, payloads = dests[order], payloads[order]
            for w0 in range(0, dests.size, window):
                w1 = min(w0 + window, dests.size)
                dw, pw = dests[w0:w1], payloads[w0:w1]
                uniq, starts = np.unique(dw, return_index=True)
                bounds = list(starts[1:]) + [dw.size]
                yield from api._overhead()
                for d, s0, s1 in zip(uniq, starts, bounds):
                    api.network.transmit(
                        ctx.rank, int(d), int(s1 - s0),
                        payload=FifoPush(pw[s0:s1], counter=_CTR_DATA),
                        inject_rate=rate)
                yield from api._charge_tx("dma", int(w1 - w0), True)
        yield from api.wait_counter_zero(_CTR_DATA)
        arrived = api.fifo_take()
        if arrived.size:
            c, p = _unpack_pairs(arrived)
            yield from ctx.compute(random_updates=arrived.size)
            local_new.append(g.absorb(c, p))

        frontier = (np.unique(np.concatenate(local_new))
                    if local_new else np.empty(0, np.int64))
    return edges_traversed


def _mpi_bfs(ctx: RankContext, g: _LocalGraph, root: int) -> Generator:
    mpi = ctx.mpi
    P = ctx.size

    frontier = np.empty(0, np.int64)
    if g.lo <= root < g.hi:
        g.parent[root - g.lo] = root
        frontier = np.array([root - g.lo], np.int64)

    edges_traversed = 0
    while True:
        owner, packed, n_edges = _expand(ctx, g, frontier)
        edges_traversed += n_edges
        yield from ctx.compute(stream_bytes=packed.nbytes * 3,
                               dispatches=1)
        chunks = [packed[owner == d] for d in range(P)]
        got = yield from mpi.alltoallv(chunks)
        local_new = []
        applied = 0
        for arr in got:
            if arr is not None and len(arr):
                c, p = _unpack_pairs(arr)
                local_new.append(g.absorb(c, p))
                applied += len(arr)
        yield from ctx.compute(random_updates=applied, dispatches=1)
        frontier = (np.unique(np.concatenate(local_new))
                    if local_new else np.empty(0, np.int64))
        total = yield from mpi.allreduce(int(frontier.size),
                                         lambda a, b: a + b)
        if total == 0:
            break
    return edges_traversed


def _agg_bfs(ctx: RankContext, g: _LocalGraph, root: int, seed: int,
             agg_spec) -> Generator:
    """Level-synchronous BFS through the destination-coalescing runtime
    (either fabric).

    Each level is one aggregation epoch: (child, parent) pairs stream
    into the channel per destination, watermark flushes overlap the
    expansion, and ``complete(extra=frontier.size)`` both settles the
    level's word accounting and rides the global-frontier sum on the
    same exchange — replacing the legacy count-exchange *and* the
    termination allreduce with one synchronisation.  The parent tree
    may differ from the legacy paths (first-writer-wins under a
    different arrival order) but stays Graph500-valid; visited sets and
    levels are identical (docs/aggregation.md).
    """
    from repro.agg.runtime import channel_for
    chan = channel_for(ctx, agg_spec, seed)

    frontier = np.empty(0, np.int64)
    if g.lo <= root < g.hi:
        g.parent[root - g.lo] = root
        frontier = np.array([root - g.lo], np.int64)

    edges_traversed = 0
    while True:
        owner, packed, n_edges = _expand(ctx, g, frontier)
        edges_traversed += n_edges
        yield from ctx.compute(stream_bytes=packed.nbytes * 3,
                               dispatches=1)
        mine = owner == ctx.rank
        local_new = []
        if mine.any():
            c, p = _unpack_pairs(packed[mine])
            yield from ctx.compute(random_updates=int(mine.sum()))
            local_new.append(g.absorb(c, p))
        remote = ~mine
        if remote.any():
            dests = owner[remote]
            payloads = packed[remote]
            order = np.argsort(dests, kind="stable")
            dests, payloads = dests[order], payloads[order]
            uniq, starts = np.unique(dests, return_index=True)
            bounds = np.append(starts[1:], dests.size)
            for d, s0, s1 in zip(uniq, starts, bounds):
                yield from chan.put(int(d), payloads[s0:s1])
        arrived = yield from chan.drain()
        if arrived.size:
            c, p = _unpack_pairs(arrived)
            yield from ctx.compute(random_updates=arrived.size)
            local_new.append(g.absorb(c, p))
        words, global_frontier = yield from chan.complete(
            extra=int(frontier.size))
        if words.size:
            c, p = _unpack_pairs(words)
            yield from ctx.compute(random_updates=words.size)
            local_new.append(g.absorb(c, p))
        if global_frontier == 0:
            break
        frontier = (np.unique(np.concatenate(local_new))
                    if local_new else np.empty(0, np.int64))
    return edges_traversed, chan.stats.as_dict()


def _mpi_bfs_diropt(ctx: RankContext, g: _LocalGraph, root: int,
                    n_vertices: int, beta: int) -> Generator:
    """Direction-optimising BFS over MPI: top-down alltoallv levels
    switch to bottom-up allgathered-bitmap levels when the frontier is
    large (the standard Graph500 optimisation)."""
    mpi = ctx.mpi
    P = ctx.size
    frontier = np.empty(0, np.int64)
    if g.lo <= root < g.hi:
        g.parent[root - g.lo] = root
        frontier = np.array([root - g.lo], np.int64)

    edges = 0
    while True:
        total = yield from mpi.allreduce(int(frontier.size),
                                         lambda a, b: a + b)
        if total == 0:
            break
        if total > n_vertices // beta:
            # bottom-up: share the global frontier bitmap
            bm_local = _frontier_bitmap(g, frontier, n_vertices)
            parts = yield from mpi.allgather(bm_local)
            bitmap = parts[0]
            for p in parts[1:]:
                bitmap = bitmap | p
            yield from ctx.compute(stream_bytes=bitmap.nbytes * P,
                                   dispatches=1)
            new_local, parents, examined = _bottom_up_scan(g, bitmap)
            g.parent[new_local] = parents
            edges += examined
            yield from ctx.compute(random_updates=new_local.size,
                                   stream_bytes=8.0 * examined,
                                   dispatches=1)
            frontier = new_local
        else:
            owner, packed, n_edges = _expand(ctx, g, frontier)
            edges += n_edges
            yield from ctx.compute(stream_bytes=packed.nbytes * 3,
                                   dispatches=1)
            chunks = [packed[owner == d] for d in range(P)]
            got = yield from mpi.alltoallv(chunks)
            local_new = []
            applied = 0
            for arr in got:
                if arr is not None and len(arr):
                    c, p = _unpack_pairs(arr)
                    local_new.append(g.absorb(c, p))
                    applied += len(arr)
            yield from ctx.compute(random_updates=applied, dispatches=1)
            frontier = (np.unique(np.concatenate(local_new))
                        if local_new else np.empty(0, np.int64))
    return edges


def _dv_bfs_diropt(ctx: RankContext, g: _LocalGraph, root: int,
                   n_vertices: int, beta: int,
                   window: int) -> Generator:
    """Direction-optimising BFS on the Data Vortex: the frontier-size
    exchange (one word to every peer under a preset counter) picks the
    direction; bottom-up levels broadcast bitmap shares straight into
    every VIC's DV memory."""
    api = ctx.dv
    P = ctx.size
    from repro.dv.vic import FifoPush, MemWrite
    rate = api._inject_rate("dma", True)
    bm_words = (n_vertices + 63) // 64

    frontier = np.empty(0, np.int64)
    if g.lo <= root < g.hi:
        g.parent[root - g.lo] = root
        frontier = np.array([root - g.lo], np.int64)

    edges = 0
    while True:
        # 1. frontier-size exchange
        if P > 1:
            yield from api.set_counter(_CTR_COUNTS, P - 1)
            yield from ctx.barrier()
            others = np.array([d for d in range(P) if d != ctx.rank])
            yield from api.send_batch(
                others, np.full(others.size, _SLOT_COUNTS + ctx.rank),
                np.full(others.size, frontier.size, np.uint64),
                counter=_CTR_COUNTS, cached_headers=True, via="dma")
            yield from api.wait_counter_zero(_CTR_COUNTS)
            sizes = api.vic.memory.read_range(
                _SLOT_COUNTS, P).astype(np.int64)
            sizes[ctx.rank] = frontier.size
            total = int(sizes.sum())
        else:
            total = int(frontier.size)
        if total == 0:
            break

        if total > n_vertices // beta:
            # 2a. bottom-up: scatter my bitmap share into every VIC
            bm_local = _frontier_bitmap(g, frontier, n_vertices)
            yield from api.set_counter(_CTR_DATA,
                                       (P - 1) * bm_words if P > 1
                                       else 0)
            yield from ctx.barrier()
            base = _SLOT_COUNTS + 2 * P
            for d in range(P):
                if d == ctx.rank:
                    continue
                api.network.transmit(
                    ctx.rank, d, bm_words,
                    payload=MemWrite(
                        addrs=base + ctx.rank * bm_words
                        + np.arange(bm_words),
                        values=bm_local, counter=_CTR_DATA),
                    inject_rate=rate)
            if P > 1:
                yield from api._charge_tx("dma",
                                          (P - 1) * bm_words, True)
            yield from api.wait_counter_zero(_CTR_DATA)
            yield from api.drain_overlapped(P * bm_words)
            bitmap = bm_local.copy()
            for s in range(P):
                if s != ctx.rank:
                    bitmap |= api.vic.memory.read_range(
                        base + s * bm_words, bm_words)
            yield from ctx.compute(stream_bytes=8.0 * bm_words * P,
                                   dispatches=1)
            new_local, parents, examined = _bottom_up_scan(g, bitmap)
            g.parent[new_local] = parents
            edges += examined
            yield from ctx.compute(random_updates=new_local.size,
                                   stream_bytes=8.0 * examined,
                                   dispatches=1)
            frontier = new_local
        else:
            # 2b. top-down level (count exchange + FIFO streams)
            owner, packed, n_edges = _expand(ctx, g, frontier)
            edges += n_edges
            yield from ctx.compute(stream_bytes=packed.nbytes * 3,
                                   dispatches=1)
            mine = owner == ctx.rank
            remote = ~mine
            sent_to = np.zeros(P, np.int64)
            np.add.at(sent_to, owner[remote], 1)
            if P > 1:
                yield from api.set_counter(_CTR_COUNTS, P - 1)
                yield from ctx.barrier()
                others = np.array([d for d in range(P)
                                   if d != ctx.rank])
                yield from api.send_batch(
                    others,
                    np.full(others.size, _SLOT_COUNTS + ctx.rank),
                    sent_to[others].astype(np.uint64),
                    counter=_CTR_COUNTS, cached_headers=True,
                    via="dma")
                yield from api.wait_counter_zero(_CTR_COUNTS)
                counts = api.vic.memory.read_range(
                    _SLOT_COUNTS, P).astype(np.int64)
                counts[ctx.rank] = 0
                expected = int(counts.sum())
            else:
                expected = 0
            local_new = []
            if mine.any():
                c, p = _unpack_pairs(packed[mine])
                yield from ctx.compute(random_updates=int(mine.sum()))
                local_new.append(g.absorb(c, p))
            yield from api.set_counter(_CTR_DATA, expected)
            yield from ctx.barrier()
            if remote.any():
                dests = owner[remote]
                payloads = packed[remote]
                order = np.argsort(dests, kind="stable")
                dests, payloads = dests[order], payloads[order]
                for w0 in range(0, dests.size, window):
                    w1 = min(w0 + window, dests.size)
                    dw, pw = dests[w0:w1], payloads[w0:w1]
                    uniq, starts = np.unique(dw, return_index=True)
                    bounds = list(starts[1:]) + [dw.size]
                    yield from api._overhead()
                    for d, s0, s1 in zip(uniq, starts, bounds):
                        api.network.transmit(
                            ctx.rank, int(d), int(s1 - s0),
                            payload=FifoPush(pw[s0:s1],
                                             counter=_CTR_DATA),
                            inject_rate=rate)
                    yield from api._charge_tx("dma", int(w1 - w0),
                                              True)
            yield from api.wait_counter_zero(_CTR_DATA)
            arrived = api.fifo_take()
            if arrived.size:
                c, p = _unpack_pairs(arrived)
                yield from ctx.compute(random_updates=arrived.size)
                local_new.append(g.absorb(c, p))
            frontier = (np.unique(np.concatenate(local_new))
                        if local_new else np.empty(0, np.int64))
    return edges


def run_bfs(spec: ClusterSpec, fabric: str, *, scale: int = 12,
            edgefactor: int = 16, n_roots: int = 4, window: int = 1024,
            strategy: str = "topdown", beta: int = 16,
            validate: bool = False) -> Dict[str, object]:
    """Run the Graph500-style BFS benchmark.

    Builds one Kronecker graph, performs ``n_roots`` searches from
    random keys with at least one neighbour (per the spec), and reports
    the harmonic-mean TEPS (the Graph500 statistic).

    ``strategy`` selects the traversal: ``"topdown"`` (the paper-era
    reference) or ``"diropt"`` (direction-optimising: levels whose
    global frontier exceeds ``n_vertices / beta`` run bottom-up over an
    exchanged frontier bitmap).
    """
    if strategy not in ("topdown", "diropt"):
        raise ValueError('strategy must be "topdown" or "diropt"')
    from repro import agg as aggmod
    agg_spec = aggmod.resolve_spec(spec.aggregation)
    if agg_spec is not None and fabric == "verbs":
        raise ValueError(
            "aggregation is not supported on the raw verbs path "
            '(use fabric="dv" or "mpi")')
    if agg_spec is not None and strategy == "diropt":
        raise ValueError(
            "aggregation applies to the top-down traversal only "
            "(bottom-up levels exchange bitmaps, not per-destination "
            "updates)")
    rng = rng_for(spec.seed, "graph500", scale)
    edges = kronecker_edges(scale, edgefactor, rng)
    n = 1 << scale
    if spec.traffic is not None:
        # BFS traffic is derived from vertex ownership, so the traffic
        # model shapes it through placement: relabel so each rank's
        # degree share tracks the destination pmf (docs/traffic.md).
        # Deterministic, RNG-free, and graph-isomorphic — validation
        # simply runs on the relabelled graph.
        from repro.traffic.placement import skewed_relabel
        relabel = skewed_relabel(degrees(edges, n), spec.n_nodes,
                                 spec.traffic.dist)
        edges = relabel[edges]
    offsets, targets = to_csr(edges, n)
    deg = np.diff(offsets)
    candidates = np.flatnonzero(deg > 0)
    roots = rng.choice(candidates, size=n_roots, replace=False)

    per_root_teps = []
    parents_ok = []
    agg_dicts = []
    for root in roots:
        root = int(root)

        def program(ctx, root=root):
            g = _LocalGraph(offsets, targets, ctx.rank, ctx.size)
            yield from ctx.barrier()
            ctx.mark("t0")
            agg_stats = None
            if agg_spec is not None:
                traversed, agg_stats = yield from _agg_bfs(
                    ctx, g, root, spec.seed, agg_spec)
            elif fabric == "dv" and strategy == "diropt":
                traversed = yield from _dv_bfs_diropt(ctx, g, root, n,
                                                      beta, window)
            elif fabric == "dv":
                traversed = yield from _dv_bfs(ctx, g, root, window)
            elif strategy == "diropt":
                traversed = yield from _mpi_bfs_diropt(ctx, g, root, n,
                                                       beta)
            else:
                traversed = yield from _mpi_bfs(ctx, g, root)
            elapsed = ctx.since("t0")
            out = {"elapsed": elapsed, "traversed": traversed,
                   "parent": g.parent}
            if agg_stats is not None:
                out["agg"] = agg_stats
            return out

        res = run_spmd(spec, program, fabric)
        elapsed = max(v["elapsed"] for v in res.values)
        parent = np.concatenate([v["parent"] for v in res.values])[:n]
        # Graph500 TEPS numerator: edges of the traversed component —
        # a property of the graph and root, independent of the
        # traversal algorithm (so top-down and direction-optimising
        # runs are directly comparable)
        visited = parent != _NO_PARENT
        traversed = int(deg[visited].sum()) // 2
        per_root_teps.append(teps(max(traversed, 1), elapsed))
        if agg_spec is not None:
            agg_dicts.extend(v["agg"] for v in res.values)
        if validate:
            parents_ok.append(
                validate_parent_tree(offsets, targets, root, parent))

    out: Dict[str, object] = {
        "fabric": fabric,
        "n_nodes": spec.n_nodes,
        "scale": scale,
        "edgefactor": edgefactor,
        "harmonic_teps": harmonic_mean(per_root_teps),
        "gteps": harmonic_mean(per_root_teps) / 1e9,
        "per_root_teps": per_root_teps,
    }
    if agg_spec is not None:
        from repro.agg.runtime import merge_stats
        out["agg"] = merge_stats(agg_dicts)
    if validate:
        out["valid"] = all(parents_ok)
    return out
