"""Distributed 2-D FFT kernel.

The paper notes (§VI) that "if a 2D or 3D FFT is performed, additional
matrix transpositions may be required to optimize memory distributions";
this kernel makes that concrete.  An ``n x n`` complex matrix is
row-distributed; the transform is

1. 1-D FFTs along the local rows;
2. a global transpose;
3. 1-D FFTs along the (new) local rows;
4. optionally a transpose back to the canonical layout.

The Data Vortex version folds the transposes into the communication via
:func:`repro.kernels.transpose.dv_transpose_batch`; the MPI version uses
alltoall.  Validation compares against ``numpy.fft.fft2``.
"""

from __future__ import annotations

from typing import Dict, Generator

import numpy as np

from repro.core.cluster import ClusterSpec, run_spmd
from repro.core.context import RankContext
from repro.core.metrics import fft1d_flops
from repro.kernels.transpose import dv_transpose_batch, mpi_transpose

_CTR_FFT2D = 46


def make_input(seed: int, n: int) -> np.ndarray:
    """Random complex n x n input matrix."""
    rng = np.random.default_rng(seed)
    return (rng.standard_normal((n, n))
            + 1j * rng.standard_normal((n, n)))


def fft2d_flops(n: int) -> float:
    """Operation count: 2n transforms of length n at 5 n log2 n each."""
    return 2.0 * n * fft1d_flops(n)


def _fft2d_program(ctx: RankContext, x: np.ndarray, n: int, fabric: str,
                   restore_layout: bool) -> Generator:
    P = ctx.size
    rows = n // P
    block = x[ctx.rank * rows:(ctx.rank + 1) * rows].copy()

    yield from ctx.barrier()
    ctx.mark("t0")
    # pass 1: transform along axis 1 (the locally contiguous axis)
    block = np.fft.fft(block, axis=1)
    yield from ctx.compute(flops=rows * fft1d_flops(n), dispatches=1)
    # global transpose
    if fabric == "dv":
        (block,) = yield from dv_transpose_batch(ctx, [block], n,
                                                 counter=_CTR_FFT2D)
    else:
        block = yield from mpi_transpose(ctx, block, n)
    # pass 2: transform along the other axis (now axis 1 again)
    block = np.fft.fft(block, axis=1)
    yield from ctx.compute(flops=rows * fft1d_flops(n), dispatches=1)
    if restore_layout:
        if fabric == "dv":
            (block,) = yield from dv_transpose_batch(ctx, [block], n,
                                                     counter=_CTR_FFT2D)
        else:
            block = yield from mpi_transpose(ctx, block, n)
    yield from ctx.barrier()
    return {"elapsed": ctx.since("t0"), "out": block}


def run_fft2d(spec: ClusterSpec, fabric: str, *, n: int = 256,
              restore_layout: bool = True,
              validate: bool = False) -> Dict[str, object]:
    """Run the distributed 2-D FFT.

    With ``restore_layout=True`` the output is row-distributed like the
    input (one extra transpose); otherwise it is left transposed, which
    many consumers (e.g. pointwise spectral operators) accept.
    """
    P = spec.n_nodes
    if n % P:
        raise ValueError(f"n={n} not divisible by {P} ranks")
    x = make_input(spec.seed, n)

    def program(ctx):
        return (yield from _fft2d_program(ctx, x, n, fabric,
                                          restore_layout))

    res = run_spmd(spec, program, fabric)
    elapsed = max(v["elapsed"] for v in res.values)
    out: Dict[str, object] = {
        "fabric": fabric, "n_nodes": P, "n": n, "elapsed_s": elapsed,
        "gflops": fft2d_flops(n) / elapsed / 1e9,
    }
    if validate:
        got = np.concatenate([v["out"] for v in res.values], axis=0)
        ref = np.fft.fft2(x)
        if not restore_layout:
            ref = ref.T
        err = np.max(np.abs(got - ref)) / max(np.max(np.abs(ref)), 1e-30)
        out["max_rel_error"] = float(err)
        out["valid"] = bool(err < 1e-10)
    return out
