"""Lightweight profiling hooks: ``@timed`` and block timers.

Two clocks are supported:

* **wall time** (``timed`` / ``timed_block``) — what the host actually
  spent, for profiling the simulator itself;
* **sim time** (``sim_block``) — what the simulated system spent, keyed
  to an :class:`~repro.sim.engine.Engine`'s ``now``.

All hooks check :func:`repro.obs.registry.enabled` first and degrade to
a plain call / empty context when observability is off, so decorating a
hot function costs one boolean test per call when disabled.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from typing import Callable, Optional

from repro.obs import registry as obsreg

__all__ = ["timed", "timed_block", "sim_block"]


def timed(name: Optional[str] = None, **labels) -> Callable:
    """Decorator recording each call's wall-clock duration into the
    histogram ``<name>`` (default: ``func.<qualname>_seconds``)."""

    def deco(fn: Callable) -> Callable:
        metric_name = name or f"func.{fn.__qualname__}_seconds"

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not obsreg.enabled():
                return fn(*args, **kwargs)
            hist = obsreg.histogram(metric_name, **labels)
            t0 = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                hist.observe(time.perf_counter() - t0)
        return wrapper
    return deco


@contextmanager
def timed_block(name: str, **labels):
    """``with timed_block("phase.setup"):`` — wall-clock histogram."""
    if not obsreg.enabled():
        yield
        return
    hist = obsreg.histogram(name, **labels)
    t0 = time.perf_counter()
    try:
        yield
    finally:
        hist.observe(time.perf_counter() - t0)


@contextmanager
def sim_block(engine, name: str, **labels):
    """``with sim_block(engine, "gups.epoch"):`` — simulated-time
    histogram (``engine`` is anything exposing ``now``)."""
    if not obsreg.enabled():
        yield
        return
    hist = obsreg.histogram(name, **labels)
    t0 = engine.now
    try:
        yield
    finally:
        hist.observe(engine.now - t0)
