"""repro.obs — the unified observability layer.

One substrate for everything the evaluation measures:

* :mod:`repro.obs.registry` — counters, gauges, label-aware histograms
  behind a process-wide enable switch (no-op singletons when disabled);
* :mod:`repro.obs.tracing` — :class:`SpanTracer`, the storage/recording
  engine behind :class:`repro.core.trace.Tracer` (Fig. 5);
* :mod:`repro.obs.profiling` — ``@timed`` and wall/sim-time block
  timers;
* :mod:`repro.obs.export` — JSON/CSV snapshot exporters;
* :mod:`repro.obs.report` — the ``repro obs`` CLI report builder.

Instrumented layers: the event engine (events, queue depth), both
cycle-accurate switches (injections, deflections, ejection-latency
histograms), the flow network, VIC/PCIe/FIFO (DMA bytes, occupancy),
the IB fabric and MPI stack (messages, collective latencies), and the
kernels' run loops.  The differential tests in
``tests/test_obs_differential.py`` prove that none of it perturbs
simulation results.

Quick use::

    from repro import obs

    with obs.session() as reg:
        run_gups(ClusterSpec(n_nodes=4), "dv")
        print(obs.to_json(reg))
"""

from repro.obs.export import to_csv, to_json, write_csv, write_json
from repro.obs.profiling import sim_block, timed, timed_block
from repro.obs.registry import (NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM,
                                Counter, Gauge, Histogram, MetricsRegistry,
                                active, counter, disable, enable, enabled,
                                gauge, histogram, session)
from repro.obs.tracing import MessageArrow, Span, SpanTracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "SpanTracer",
    "Span", "MessageArrow",
    "NULL_COUNTER", "NULL_GAUGE", "NULL_HISTOGRAM",
    "active", "counter", "disable", "enable", "enabled", "gauge",
    "histogram", "session",
    "timed", "timed_block", "sim_block",
    "to_csv", "to_json", "write_csv", "write_json",
]
