"""Exporters: registry snapshots as JSON or flat CSV.

The JSON form is the machine-readable report the ``repro obs`` CLI
emits; the CSV form is one row per (series, field) for spreadsheet-style
post-processing, mirroring the flat exports in :mod:`repro.core.report`.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.obs.registry import MetricsRegistry

__all__ = ["to_json", "to_csv", "write_json", "write_csv"]


def _labels_text(labels: dict) -> str:
    if not labels:
        return ""
    return ";".join(f"{k}={v}" for k, v in sorted(labels.items()))


def to_json(registry: MetricsRegistry, meta: Optional[dict] = None,
            indent: int = 2) -> str:
    """Full snapshot as a JSON document (optionally with a ``meta``
    header describing the run that produced it)."""
    doc = {"schema": "repro.obs/v1"}
    if meta:
        doc["meta"] = meta
    doc.update(registry.snapshot())
    return json.dumps(doc, indent=indent, sort_keys=False)


def to_csv(registry: MetricsRegistry) -> str:
    """Flat CSV: ``kind,name,labels,field,value`` per scalar field."""
    lines = ["kind,name,labels,field,value"]
    full = registry.snapshot()
    for snap, kind in ([(s, "counter") for s in full["counters"]]
                       + [(s, "gauge") for s in full["gauges"]]
                       + [(s, "histogram") for s in full["histograms"]]):
        labels = _labels_text(snap["labels"])
        for field, value in snap.items():
            if field in ("name", "labels"):
                continue
            lines.append(f"{kind},{snap['name']},{labels},{field},{value!r}")
    return "\n".join(lines)


def write_json(registry: MetricsRegistry, path: str,
               meta: Optional[dict] = None) -> None:
    with open(path, "w") as fh:
        fh.write(to_json(registry, meta=meta) + "\n")


def write_csv(registry: MetricsRegistry, path: str) -> None:
    with open(path, "w") as fh:
        fh.write(to_csv(registry) + "\n")
