"""Metric primitives and the process-wide registry switchboard.

The observability layer follows one rule everywhere: **handles are
resolved at construction time, recording is guarded at run time**.  A
component asks the module for its metric handles when it is built
(``counter("dv.switch.injected", model="fast")``); if observability is
disabled the component receives the shared no-op singletons and caches
``enabled() == False`` in a local boolean, so the hot path pays one
branch — no dictionary lookups, no string formatting, no allocation.

Because simulations are constructed fresh per run (``run_spmd`` builds a
new engine and new device state every time), flipping the global switch
between runs is race-free: enable, build, run, snapshot.

Typical use::

    from repro.obs import registry as obs

    with obs.session() as reg:            # enabled, fresh registry
        run_gups(spec, "dv")
        print(reg.value("dv.pcie.bytes", path="dma", direction="write"))
"""

from __future__ import annotations

import math
from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "NULL_COUNTER", "NULL_GAUGE", "NULL_HISTOGRAM",
    "enabled", "active", "enable", "disable", "session",
    "counter", "gauge", "histogram",
]

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


# ------------------------------------------------------------- metrics ---

class Counter:
    """Monotonically increasing count (events, packets, bytes)."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    add = inc   # readability alias for byte counts

    def snapshot(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels),
                "value": self.value}


class Gauge:
    """Instantaneous level (queue depth, occupancy); tracks the peak."""

    __slots__ = ("name", "labels", "value", "max")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.max = 0.0

    def set(self, v: float) -> None:
        self.value = v
        if v > self.max:
            self.max = v

    def set_max(self, v: float) -> None:
        """Record ``v`` only as a candidate peak (cheapest hot-path form)."""
        if v > self.max:
            self.max = v
            self.value = v

    def inc(self, n: float = 1) -> None:
        self.set(self.value + n)

    def dec(self, n: float = 1) -> None:
        self.value -= n

    def snapshot(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels),
                "value": self.value, "max": self.max}


#: Default bucket upper bounds: powers of two covering a nanosecond to
#: ~17 minutes when observing seconds, and 1..2^40 when observing counts
#: (latency cycles, hop counts, message sizes).
DEFAULT_BOUNDS: Tuple[float, ...] = tuple(
    2.0 ** k for k in range(-30, 41))


class Histogram:
    """Fixed-bound exponential histogram with exact count/sum/min/max.

    Percentiles are resolved to a bucket upper bound clamped into the
    observed ``[min, max]`` range, which makes ``percentile`` monotone in
    the requested quantile; ``merge`` of same-bound histograms adds
    bucket counts, so merging is associative and commutative (the
    property tests pin both).
    """

    __slots__ = ("name", "labels", "bounds", "counts", "count", "total",
                 "min", "max")

    kind = "histogram"

    def __init__(self, name: str, labels: LabelKey = (),
                 bounds: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.labels = labels
        self.bounds: Tuple[float, ...] = tuple(
            DEFAULT_BOUNDS if bounds is None else bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.counts = [0] * (len(self.bounds) + 1)  # +1 overflow bucket
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, v: float) -> None:
        self.counts[bisect_left(self.bounds, v)] += 1
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    def observe_many(self, values: Sequence[float]) -> None:
        """Batch :meth:`observe` — one pass for a whole array of values.

        Equivalent to calling :meth:`observe` on each element (the
        property tests pin the equivalence); used by vectorised hot
        paths that eject many packets per cycle.
        """
        n = len(values)
        if n == 0:
            return
        try:
            import numpy as np
            arr = np.asarray(values, dtype=float)
            idx = np.searchsorted(self.bounds, arr, side="left")
            for i, c in zip(*np.unique(idx, return_counts=True)):
                self.counts[int(i)] += int(c)
            total = float(arr.sum())
            lo = float(arr.min())
            hi = float(arr.max())
        except ImportError:  # pragma: no cover - numpy is a hard dep
            for v in values:
                self.observe(v)
            return
        self.count += n
        self.total += total
        if lo < self.min:
            self.min = lo
        if hi > self.max:
            self.max = hi

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Value at or below which ``q`` percent of observations fall
        (bucket-resolution upper bound; exact at the extremes)."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile {q} outside [0, 100]")
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(q / 100.0 * self.count))
        cum = 0
        for i, c in enumerate(self.counts):
            cum += c
            if cum >= target:
                if i == len(self.bounds):
                    return self.max
                return min(max(self.bounds[i], self.min), self.max)
        return self.max  # pragma: no cover - cum always reaches count

    def merge(self, other: "Histogram") -> "Histogram":
        """Combine two same-bound histograms into a new one."""
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        out = Histogram(self.name, self.labels, self.bounds)
        out.counts = [a + b for a, b in zip(self.counts, other.counts)]
        out.count = self.count + other.count
        out.total = self.total + other.total
        out.min = min(self.min, other.min)
        out.max = max(self.max, other.max)
        return out

    def snapshot(self) -> dict:
        empty = self.count == 0
        return {
            "name": self.name, "labels": dict(self.labels),
            "count": self.count, "total": self.total,
            "min": 0.0 if empty else self.min,
            "max": 0.0 if empty else self.max,
            "mean": self.mean,
            "p50": self.percentile(50), "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


# --------------------------------------------------------- null metrics ---

class _NullMetric:
    """Shared do-nothing stand-in handed out while obs is disabled."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass

    add = inc

    def dec(self, n: float = 1) -> None:
        pass

    def set(self, v: float) -> None:
        pass

    def set_max(self, v: float) -> None:
        pass

    def observe(self, v: float) -> None:
        pass

    def observe_many(self, values: Sequence[float]) -> None:
        pass


NULL_COUNTER = _NullMetric()
NULL_GAUGE = _NullMetric()
NULL_HISTOGRAM = _NullMetric()


# ------------------------------------------------------------- registry ---

class MetricsRegistry:
    """Get-or-create store of metric series keyed by (name, labels).

    Two components asking for the same series share one handle, so
    per-VIC or per-endpoint instrumentation aggregates cluster-wide for
    free (label with ``port=...`` etc. when a breakdown is wanted).
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelKey], object] = {}

    def _get(self, cls, name: str, labels: Dict[str, object], **kw):
        key = (name, _label_key(labels))
        m = self._metrics.get(key)
        if m is None:
            m = cls(name, key[1], **kw)
            self._metrics[key] = m
        elif not isinstance(m, cls):
            raise TypeError(
                f"metric {name!r} already registered as {m.kind}")
        return m

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, bounds: Optional[Sequence[float]] = None,
                  **labels) -> Histogram:
        return self._get(Histogram, name, labels, bounds=bounds)

    # -- inspection --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[object]:
        return iter(sorted(self._metrics.values(),
                           key=lambda m: (m.name, m.labels)))

    def get(self, name: str, **labels) -> Optional[object]:
        """Existing series or None (never creates)."""
        return self._metrics.get((name, _label_key(labels)))

    def value(self, name: str, **labels):
        """Counter/gauge value (0 if the series was never touched)."""
        m = self.get(name, **labels)
        return 0 if m is None else m.value

    def total(self, name: str):
        """Sum of a counter across all label combinations."""
        return sum(m.value for m in self._metrics.values()
                   if m.name == name and isinstance(m, Counter))

    def snapshot(self) -> dict:
        """Plain-data view of every series, grouped by metric kind."""
        out: Dict[str, List[dict]] = {"counters": [], "gauges": [],
                                      "histograms": []}
        for m in self:
            out[m.kind + "s"].append(m.snapshot())
        return out


# --------------------------------------------------------- global switch ---

_ACTIVE: Optional[MetricsRegistry] = None


def enabled() -> bool:
    """Is a registry currently collecting?"""
    return _ACTIVE is not None


def active() -> Optional[MetricsRegistry]:
    """The collecting registry, or None while disabled."""
    return _ACTIVE


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install ``registry`` (or a fresh one) as the process-wide sink."""
    global _ACTIVE
    _ACTIVE = registry if registry is not None else MetricsRegistry()
    return _ACTIVE


def disable() -> None:
    """Turn collection off; handles already resolved keep working but new
    components get the no-op singletons."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def session(enable_obs: bool = True):
    """Scoped enable/disable that restores the previous state.

    Yields the fresh registry (or None when ``enable_obs=False``) —
    the idiom every test and the CLI report use.
    """
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = MetricsRegistry() if enable_obs else None
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = prev


# Construction-time resolvers: live handle when enabled, singleton no-op
# when disabled.  Components must also cache ``enabled()`` in a local
# bool and guard hot-path recording with it.

def counter(name: str, **labels):
    # NB: ``is None`` — a fresh registry is empty and __len__ makes it falsy.
    if _ACTIVE is None:
        return NULL_COUNTER
    return _ACTIVE.counter(name, **labels)


def gauge(name: str, **labels):
    if _ACTIVE is None:
        return NULL_GAUGE
    return _ACTIVE.gauge(name, **labels)


def histogram(name: str, bounds: Optional[Sequence[float]] = None, **labels):
    if _ACTIVE is None:
        return NULL_HISTOGRAM
    return _ACTIVE.histogram(name, bounds=bounds, **labels)
