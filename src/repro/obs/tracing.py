"""Span tracing — the storage and recording half of the Fig. 5 apparatus.

:class:`SpanTracer` owns span/message recording, CSV export, and the
sim-time context manager; :class:`repro.core.trace.Tracer` extends it
with the paper-specific analysis (destination-run statistics, the ASCII
timeline renderer).  When a metrics registry is active, every recorded
span also feeds a per-kind duration histogram
(``trace.span_seconds{kind=...}``), so the unified ``repro obs`` report
sees trace time alongside device counters.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs import registry as obsreg


@dataclass(frozen=True)
class Span:
    """A traced activity region on one rank's timeline."""

    rank: int
    t0: float
    t1: float
    kind: str           # e.g. "compute", "mpi", "dv", "barrier"
    label: str = ""

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass(frozen=True)
class MessageArrow:
    """A point-to-point message for the timeline's arrow overlay."""

    src: int
    dst: int
    t: float
    nbytes: int = 0


class SpanTracer:
    """Accumulates spans and message arrows during a run."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.spans: List[Span] = []
        self.messages: List[MessageArrow] = []
        self._obs_on = enabled and obsreg.enabled()
        self._span_hists: Dict[str, object] = {}
        self._m_messages = (obsreg.counter("trace.messages")
                            if self._obs_on else obsreg.NULL_COUNTER)
        self._m_msg_bytes = (obsreg.counter("trace.message_bytes")
                             if self._obs_on else obsreg.NULL_COUNTER)

    # -- recording ---------------------------------------------------------
    def span(self, rank: int, t0: float, t1: float, kind: str,
             label: str = "") -> None:
        if not self.enabled:
            return
        if t1 < t0:
            raise ValueError("span ends before it starts")
        self.spans.append(Span(rank, t0, t1, kind, label))
        if self._obs_on:
            h = self._span_hists.get(kind)
            if h is None:
                h = obsreg.histogram("trace.span_seconds", kind=kind)
                self._span_hists[kind] = h
            h.observe(t1 - t0)

    def message(self, src: int, dst: int, t: float, nbytes: int = 0) -> None:
        if not self.enabled:
            return
        self.messages.append(MessageArrow(src, dst, t, nbytes))
        if self._obs_on:
            self._m_messages.inc()
            self._m_msg_bytes.inc(nbytes)

    @contextmanager
    def region(self, engine, rank: int, kind: str, label: str = ""):
        """Span a ``with`` block in *simulated* time.

        ``engine`` is anything with a ``now`` attribute (normally
        :class:`repro.sim.engine.Engine`); the span covers the sim-time
        consumed by whatever the block drove.
        """
        t0 = engine.now
        try:
            yield self
        finally:
            self.span(rank, t0, engine.now, kind, label)

    # -- analysis ----------------------------------------------------------
    def time_by_kind(self, rank: Optional[int] = None) -> Dict[str, float]:
        """Total traced seconds per activity kind (optionally one rank)."""
        out: Dict[str, float] = {}
        for s in self.spans:
            if rank is not None and s.rank != rank:
                continue
            out[s.kind] = out.get(s.kind, 0.0) + s.duration
        return out

    # -- export ------------------------------------------------------------
    def to_rows(self) -> List[Tuple]:
        """Spans as plain tuples (for CSV export in the harness)."""
        return [(s.rank, s.t0, s.t1, s.kind, s.label) for s in self.spans]

    def spans_csv(self) -> str:
        """Spans as CSV text (Paraver-style flat export)."""
        lines = ["rank,t0,t1,kind,label"]
        for s in sorted(self.spans, key=lambda s: (s.rank, s.t0)):
            lines.append(f"{s.rank},{s.t0!r},{s.t1!r},{s.kind},{s.label}")
        return "\n".join(lines)

    def messages_csv(self) -> str:
        """Message arrows as CSV text."""
        lines = ["src,dst,t,nbytes"]
        for m in sorted(self.messages, key=lambda m: m.t):
            lines.append(f"{m.src},{m.dst},{m.t!r},{m.nbytes}")
        return "\n".join(lines)
