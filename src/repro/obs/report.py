"""Builder for the ``repro obs`` CLI report.

Collects one unified metrics snapshot covering every instrumented layer:

1. a GUPS run on the Data Vortex fabric (engine events, VIC packet
   dispatch, PCIe DMA bytes, FIFO occupancy, flow-network serialisation,
   kernel-level update counts) with tracing on, so the Fig. 5 span
   breakdown appears as ``trace.span_seconds`` histograms;
2. the same GUPS run on MPI-over-InfiniBand (fabric messages/bytes,
   collective latency histograms);
3. a cycle-accurate random-traffic sample on the vectorised switch
   (injections, deflections, ejection-latency histogram) — the layer
   cluster runs replace with the flow model, reported here from the
   ground-truth simulator.

Imports are deliberately local: :mod:`repro.obs` must stay importable
from the bottom of the stack (the engine imports it), so this module
pulls the cluster/kernels layers in lazily.
"""

from __future__ import annotations

from typing import Optional

from repro.obs import export
from repro.obs import registry as obsreg


def collect_gups_metrics(n_nodes: int = 4, seed: int = 2017,
                         table_words: int = 1 << 12,
                         switch_ports: int = 16,
                         packets_per_port: int = 64,
                         registry: Optional[obsreg.MetricsRegistry] = None
                         ) -> obsreg.MetricsRegistry:
    """Run the three report workloads with observability on; returns the
    populated registry."""
    from repro.core.cluster import ClusterSpec
    from repro.dv.fastswitch import FastCycleSwitch
    from repro.dv.topology import DataVortexTopology
    from repro.kernels.gups import run_gups
    from repro.sim.rng import rng_for

    prev = obsreg.active()
    reg = obsreg.enable(registry)
    try:
        spec = ClusterSpec(n_nodes=n_nodes, seed=seed, trace=True)
        run_gups(spec, "dv", table_words=table_words,
                 n_updates=table_words)
        run_gups(spec, "mpi", table_words=table_words,
                 n_updates=table_words)

        # ground-truth switch layer: uniform random traffic sample
        topo = DataVortexTopology(height=max(2, switch_ports // 2),
                                  angles=2)
        sw = FastCycleSwitch(topo)
        rng = rng_for(seed, "obs", "switch-traffic")
        for src in range(topo.ports):
            for dst in rng.integers(0, topo.ports, packets_per_port):
                sw.inject(src, int(dst))
        sw.run_until_drained()
    finally:
        if prev is not None:
            obsreg.enable(prev)
        else:
            obsreg.disable()
    return reg


def gups_report(n_nodes: int = 4, seed: int = 2017, fmt: str = "json",
                **kw) -> str:
    """The ``repro obs`` payload: JSON (default) or flat CSV."""
    reg = collect_gups_metrics(n_nodes=n_nodes, seed=seed, **kw)
    if fmt == "csv":
        return export.to_csv(reg)
    meta = {"workload": "gups+switch-traffic", "n_nodes": n_nodes,
            "seed": seed, "fabrics": ["dv", "mpi"]}
    return export.to_json(reg, meta=meta)
