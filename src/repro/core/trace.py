"""Execution tracing (the apparatus behind the paper's Fig. 5).

The paper traced its MPI GUPS run with Extrae and showed per-rank
timelines of computation (blue), MPI calls (other colours) and messages
(yellow lines).  :class:`Tracer` records the same information —
``Span(rank, t0, t1, kind)`` regions and point-to-point message arrows —
and can render an ASCII timeline good enough to exhibit the paper's
qualitative point: GUPS communication has no destination regularity to
exploit.

Recording and storage live in :class:`repro.obs.tracing.SpanTracer`
(the unified observability layer, which also mirrors span durations
into ``trace.span_seconds`` histograms when a metrics registry is
active); this class adds the paper-specific analysis and rendering.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.tracing import MessageArrow, Span, SpanTracer

__all__ = ["Span", "MessageArrow", "Tracer"]


class Tracer(SpanTracer):
    """Span/message recorder plus Fig. 5 analysis and ASCII rendering."""

    # -- analysis ----------------------------------------------------------
    def destination_runs(self) -> List[int]:
        """Lengths of runs of consecutive messages (in time order, per
        source) to the same destination.

        This is the quantitative version of the paper's Fig. 5b argument:
        if most runs have length 1, there is "no exploitable regularity
        for aggregating messages directed to the same destination".
        """
        by_src: Dict[int, List[MessageArrow]] = {}
        for m in sorted(self.messages, key=lambda m: (m.src, m.t)):
            by_src.setdefault(m.src, []).append(m)
        runs: List[int] = []
        for msgs in by_src.values():
            run = 1
            for prev, cur in zip(msgs, msgs[1:]):
                if cur.dst == prev.dst:
                    run += 1
                else:
                    runs.append(run)
                    run = 1
            runs.append(run)
        return runs

    # -- rendering ------------------------------------------------------------
    def render_timeline(self, width: int = 100,
                        t0: Optional[float] = None,
                        t1: Optional[float] = None,
                        kinds: Optional[Dict[str, str]] = None) -> str:
        """ASCII per-rank timeline (one row per rank).

        ``kinds`` maps span kind -> single display character; defaults to
        '#' for compute and distinct letters for everything else.
        """
        if not self.spans:
            return "(no spans recorded)"
        lo = min(s.t0 for s in self.spans) if t0 is None else t0
        hi = max(s.t1 for s in self.spans) if t1 is None else t1
        if hi <= lo:
            hi = lo + 1e-12
        ranks = sorted({s.rank for s in self.spans})
        charmap = kinds or {}
        auto = iter("abcdefghijklmnopqrstuvwxyz")
        rows = []
        for r in ranks:
            row = [" "] * width
            for s in self.spans:
                if s.rank != r or s.t1 < lo or s.t0 > hi:
                    continue
                if s.kind not in charmap:
                    charmap[s.kind] = "#" if s.kind == "compute" else \
                        next(auto)
                c = charmap[s.kind]
                i0 = int((max(s.t0, lo) - lo) / (hi - lo) * (width - 1))
                i1 = int((min(s.t1, hi) - lo) / (hi - lo) * (width - 1))
                for i in range(i0, i1 + 1):
                    row[i] = c
            rows.append(f"rank {r:>3} |" + "".join(row) + "|")
        legend = "  ".join(f"{c}={k}" for k, c in sorted(charmap.items(),
                                                         key=lambda kv: kv[1]))
        header = (f"timeline {lo * 1e6:.1f}us .. {hi * 1e6:.1f}us   "
                  f"({legend})")
        return "\n".join([header] + rows)

    def busy_fraction(self, rank: int, kind: str,
                      t0: Optional[float] = None,
                      t1: Optional[float] = None) -> float:
        """Fraction of [t0, t1] the rank spent inside ``kind`` spans.

        Overlapping spans of the same kind are merged before measuring,
        so nested or duplicated tracing cannot exceed 1.0.
        """
        spans = sorted((s.t0, s.t1) for s in self.spans
                       if s.rank == rank and s.kind == kind)
        if not spans:
            return 0.0
        lo = min(s.t0 for s in self.spans) if t0 is None else t0
        hi = max(s.t1 for s in self.spans) if t1 is None else t1
        if hi <= lo:
            return 0.0
        total = 0.0
        cur_a, cur_b = spans[0]
        for a, b in spans[1:]:
            if a <= cur_b:
                cur_b = max(cur_b, b)
            else:
                total += (min(cur_b, hi) - max(cur_a, lo))
                cur_a, cur_b = a, b
        total += (min(cur_b, hi) - max(cur_a, lo))
        return max(0.0, min(total / (hi - lo), 1.0))
