"""Execution tracing (the apparatus behind the paper's Fig. 5).

The paper traced its MPI GUPS run with Extrae and showed per-rank
timelines of computation (blue), MPI calls (other colours) and messages
(yellow lines).  :class:`Tracer` records the same information —
``Span(rank, t0, t1, kind)`` regions and point-to-point message arrows —
and can render an ASCII timeline good enough to exhibit the paper's
qualitative point: GUPS communication has no destination regularity to
exploit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Span:
    """A traced activity region on one rank's timeline."""

    rank: int
    t0: float
    t1: float
    kind: str           # e.g. "compute", "mpi", "dv", "barrier"
    label: str = ""

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass(frozen=True)
class MessageArrow:
    """A point-to-point message for the timeline's arrow overlay."""

    src: int
    dst: int
    t: float
    nbytes: int = 0


class Tracer:
    """Accumulates spans and message arrows during a run."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.spans: List[Span] = []
        self.messages: List[MessageArrow] = []

    def span(self, rank: int, t0: float, t1: float, kind: str,
             label: str = "") -> None:
        if not self.enabled:
            return
        if t1 < t0:
            raise ValueError("span ends before it starts")
        self.spans.append(Span(rank, t0, t1, kind, label))

    def message(self, src: int, dst: int, t: float, nbytes: int = 0) -> None:
        if not self.enabled:
            return
        self.messages.append(MessageArrow(src, dst, t, nbytes))

    # -- analysis ----------------------------------------------------------
    def time_by_kind(self, rank: Optional[int] = None) -> Dict[str, float]:
        """Total traced seconds per activity kind (optionally one rank)."""
        out: Dict[str, float] = {}
        for s in self.spans:
            if rank is not None and s.rank != rank:
                continue
            out[s.kind] = out.get(s.kind, 0.0) + s.duration
        return out

    def destination_runs(self) -> List[int]:
        """Lengths of runs of consecutive messages (in time order, per
        source) to the same destination.

        This is the quantitative version of the paper's Fig. 5b argument:
        if most runs have length 1, there is "no exploitable regularity
        for aggregating messages directed to the same destination".
        """
        by_src: Dict[int, List[MessageArrow]] = {}
        for m in sorted(self.messages, key=lambda m: (m.src, m.t)):
            by_src.setdefault(m.src, []).append(m)
        runs: List[int] = []
        for msgs in by_src.values():
            run = 1
            for prev, cur in zip(msgs, msgs[1:]):
                if cur.dst == prev.dst:
                    run += 1
                else:
                    runs.append(run)
                    run = 1
            runs.append(run)
        return runs

    # -- rendering ------------------------------------------------------------
    def render_timeline(self, width: int = 100,
                        t0: Optional[float] = None,
                        t1: Optional[float] = None,
                        kinds: Optional[Dict[str, str]] = None) -> str:
        """ASCII per-rank timeline (one row per rank).

        ``kinds`` maps span kind -> single display character; defaults to
        '#' for compute and distinct letters for everything else.
        """
        if not self.spans:
            return "(no spans recorded)"
        lo = min(s.t0 for s in self.spans) if t0 is None else t0
        hi = max(s.t1 for s in self.spans) if t1 is None else t1
        if hi <= lo:
            hi = lo + 1e-12
        ranks = sorted({s.rank for s in self.spans})
        charmap = kinds or {}
        auto = iter("abcdefghijklmnopqrstuvwxyz")
        rows = []
        for r in ranks:
            row = [" "] * width
            for s in self.spans:
                if s.rank != r or s.t1 < lo or s.t0 > hi:
                    continue
                if s.kind not in charmap:
                    charmap[s.kind] = "#" if s.kind == "compute" else \
                        next(auto)
                c = charmap[s.kind]
                i0 = int((max(s.t0, lo) - lo) / (hi - lo) * (width - 1))
                i1 = int((min(s.t1, hi) - lo) / (hi - lo) * (width - 1))
                for i in range(i0, i1 + 1):
                    row[i] = c
            rows.append(f"rank {r:>3} |" + "".join(row) + "|")
        legend = "  ".join(f"{c}={k}" for k, c in sorted(charmap.items(),
                                                         key=lambda kv: kv[1]))
        header = (f"timeline {lo * 1e6:.1f}us .. {hi * 1e6:.1f}us   "
                  f"({legend})")
        return "\n".join([header] + rows)

    def to_rows(self) -> List[Tuple]:
        """Spans as plain tuples (for CSV export in the harness)."""
        return [(s.rank, s.t0, s.t1, s.kind, s.label) for s in self.spans]

    def spans_csv(self) -> str:
        """Spans as CSV text (Paraver-style flat export)."""
        lines = ["rank,t0,t1,kind,label"]
        for s in sorted(self.spans, key=lambda s: (s.rank, s.t0)):
            lines.append(f"{s.rank},{s.t0!r},{s.t1!r},{s.kind},{s.label}")
        return "\n".join(lines)

    def messages_csv(self) -> str:
        """Message arrows as CSV text."""
        lines = ["src,dst,t,nbytes"]
        for m in sorted(self.messages, key=lambda m: m.t):
            lines.append(f"{m.src},{m.dst},{m.t!r},{m.nbytes}")
        return "\n".join(lines)

    def busy_fraction(self, rank: int, kind: str,
                      t0: Optional[float] = None,
                      t1: Optional[float] = None) -> float:
        """Fraction of [t0, t1] the rank spent inside ``kind`` spans.

        Overlapping spans of the same kind are merged before measuring,
        so nested or duplicated tracing cannot exceed 1.0.
        """
        spans = sorted((s.t0, s.t1) for s in self.spans
                       if s.rank == rank and s.kind == kind)
        if not spans:
            return 0.0
        lo = min(s.t0 for s in self.spans) if t0 is None else t0
        hi = max(s.t1 for s in self.spans) if t1 is None else t1
        if hi <= lo:
            return 0.0
        total = 0.0
        cur_a, cur_b = spans[0]
        for a, b in spans[1:]:
            if a <= cur_b:
                cur_b = max(cur_b, b)
            else:
                total += (min(cur_b, hi) - max(cur_a, lo))
                cur_a, cur_b = a, b
        total += (min(cur_b, hi) - max(cur_a, lo))
        return max(0.0, min(total / (hi - lo), 1.0))
