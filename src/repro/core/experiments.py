"""Registry of the paper's experiments: the per-experiment index as code.

Every table/figure of the evaluation section is described by an
:class:`Experiment` carrying its identifier, the workload parameters the
harness uses, which modules implement the pieces, and a runner that
regenerates the data.  DESIGN.md's experiment index, EXPERIMENTS.md and
the CLI all derive from this single source of truth.

>>> from repro.core.experiments import REGISTRY
>>> sorted(REGISTRY)[:3]
['fig3a', 'fig3b', 'fig4']
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.core.cluster import ClusterSpec
from repro.core.report import Table


@dataclass(frozen=True)
class Experiment:
    """One paper artifact (figure or table) and how to regenerate it."""

    exp_id: str                 #: e.g. "fig6a"
    title: str                  #: what the paper plots
    workload: str               #: workload + parameters (scaled)
    modules: tuple              #: implementing modules
    bench: str                  #: benchmark file that regenerates it
    paper_expectation: str      #: the shape the paper reports
    runner: Optional[Callable[..., Table]] = field(default=None,
                                                   compare=False)


def _run_fig3(seed: int = 2017, sizes=None) -> Table:
    from repro.kernels import PINGPONG_MODES, run_pingpong
    spec = ClusterSpec(n_nodes=2, seed=seed)
    sizes = sizes or [1 << k for k in range(0, 19, 3)]
    t = Table("fig3: ping-pong bandwidth (GB/s)",
              ["words", *PINGPONG_MODES])
    for n in sizes:
        t.add_row(n, *(run_pingpong(spec, m, n, iters=4)["bandwidth_gbs"]
                       for m in PINGPONG_MODES))
    return t


def _run_fig4(seed: int = 2017, nodes=(2, 4, 8, 16, 32)) -> Table:
    from repro.kernels import run_barrier_bench
    t = Table("fig4: barrier latency (us)",
              ["nodes", "dv", "dv_fast", "mpi"])
    for n in nodes:
        spec = ClusterSpec(n_nodes=n, seed=seed)
        t.add_row(n, *(run_barrier_bench(spec, i, iters=8)["latency_us"]
                       for i in ("dv", "dv_fast", "mpi")))
    return t


def _run_fig6(seed: int = 2017, nodes=(4, 8, 16, 32)) -> Table:
    from repro.kernels import run_gups
    t = Table("fig6: GUPS (MUPS)",
              ["nodes", "dv_per_pe", "mpi_per_pe", "dv_total",
               "mpi_total"])
    for n in nodes:
        spec = ClusterSpec(n_nodes=n, seed=seed)
        dv = run_gups(spec, "dv", table_words=1 << 14, n_updates=1 << 13)
        ib = run_gups(spec, "mpi", table_words=1 << 14,
                      n_updates=1 << 13)
        t.add_row(n, dv["mups_per_pe"], ib["mups_per_pe"],
                  dv["mups_total"], ib["mups_total"])
    return t


def _run_fig7(seed: int = 2017, nodes=(2, 4, 8, 16, 32)) -> Table:
    from repro.kernels import run_fft1d
    t = Table("fig7: FFT-1D aggregate GFLOPS", ["nodes", "dv", "mpi"])
    for n in nodes:
        spec = ClusterSpec(n_nodes=n, seed=seed)
        t.add_row(n, run_fft1d(spec, "dv", log2_points=18)["gflops"],
                  run_fft1d(spec, "mpi", log2_points=18)["gflops"])
    return t


def _run_fig8(seed: int = 2017, nodes=(2, 4, 8, 16, 32)) -> Table:
    from repro.kernels import run_bfs
    t = Table("fig8: Graph500 MTEPS", ["nodes", "scale", "dv", "mpi"])
    for n in nodes:
        spec = ClusterSpec(n_nodes=n, seed=seed)
        scale = 11 + int(math.log2(n))
        t.add_row(
            n, scale,
            run_bfs(spec, "dv", scale=scale,
                    n_roots=3)["harmonic_teps"] / 1e6,
            run_bfs(spec, "mpi", scale=scale,
                    n_roots=3)["harmonic_teps"] / 1e6)
    return t


def _run_fig9(seed: int = 2017, n_nodes: int = 32) -> Table:
    from repro.apps import run_heat, run_snap, run_vorticity
    spec = ClusterSpec(n_nodes=n_nodes, seed=seed)
    t = Table("fig9: DV speedup over MPI", ["application", "speedup"])
    for name, fn, kw in (
        ("SNAP", run_snap,
         dict(nx=16, ny_per_rank=4, nz=16, n_angles=32, chunk=4)),
        ("Vorticity", run_vorticity, dict(n=256, steps=2)),
        ("Heat", run_heat, dict(n=48, steps=10)),
    ):
        times = {f: fn(spec, f, **kw)["elapsed_s"] for f in ("mpi", "dv")}
        t.add_row(name, times["mpi"] / times["dv"])
    return t


def _run_fig_scaleout(seed: int = 2017, nodes=None, workloads=None,
                      fabrics=None, flow_impl: str = "fast",
                      executor=None, **overrides) -> Table:
    """The 64-1024-node cluster projection (§IX extended).

    Rides :func:`repro.core.scaling.scaleout_sweep`: every point runs
    the pooled ``flow_impl="fast"`` engines and fans across the
    executor's worker pool / result cache.
    """
    from repro.core import scaling
    nodes = tuple(nodes) if nodes else scaling.SCALEOUT_NODES
    workloads = (tuple(workloads) if workloads
                 else scaling.SCALEOUT_WORKLOADS)
    fabrics = tuple(fabrics) if fabrics else scaling.SCALEOUT_FABRICS
    rows = scaling.scaleout_sweep(workloads=workloads, nodes=nodes,
                                  fabrics=fabrics, seed=seed,
                                  flow_impl=flow_impl, executor=executor,
                                  **overrides)
    by_key = {(r["workload"], r["nodes"], r["fabric"]): r for r in rows}
    t = Table("fig_scaleout: projected per-PE and aggregate rates "
              "(GUPS: MUPS, BFS: MTEPS, FFT: GFLOPS)",
              ["workload", "nodes", "dv_per_pe", "mpi_per_pe",
               "dv_total", "mpi_total"])
    for w in workloads:
        for n in nodes:
            cells = []
            for col in ("per_pe", "total"):
                for f in ("dv", "mpi"):
                    r = by_key.get((w, n, f))
                    cells.append(float("nan") if r is None else r[col])
            t.add_row(w, n, *cells)
    return t


def _run_fig_skew(seed: int = 2017, nodes: int = 4, exponents=None,
                  include_hotset: bool = True,
                  table_words: int = 1 << 12, n_updates: int = 1 << 9,
                  window: int = 256, flow_impl: str = "reference",
                  executor=None) -> Table:
    """Fabric degradation under destination skew (docs/traffic.md).

    GUPS under a sweep of destination distributions — uniform
    (Zipf s=0) through head-dominated exponents to a hot-set extreme —
    on both fabrics, with the DV/IB ratio per row.
    """
    from repro.traffic.experiments import SKEW_EXPONENTS, skew_table
    return skew_table(
        executor, nodes=nodes, seed=seed,
        exponents=(tuple(exponents) if exponents is not None
                   else SKEW_EXPONENTS),
        include_hotset=include_hotset, table_words=table_words,
        n_updates=n_updates, window=window, flow_impl=flow_impl)


def _run_fig_agg(seed: int = 2017, nodes: int = 8, exponents=None,
                 include_hotset: bool = True, watermarks=None,
                 routing: str = "direct",
                 table_words: int = 1 << 10, n_updates: int = 1 << 12,
                 window: int = 64, flow_impl: str = "reference",
                 executor=None) -> Table:
    """Destination-coalescing aggregation vs fabric choice
    (docs/aggregation.md).

    GUPS under the PR 6 skew levels with the :mod:`repro.agg` runtime
    swept across watermarks on IB; un-aggregated DV and IB per row as
    baselines, ``ib_agg_over_dv`` marks the crossover.
    """
    from repro.agg.experiments import (AGG_EXPONENTS, AGG_WATERMARKS,
                                       agg_table)
    return agg_table(
        executor, nodes=nodes, seed=seed,
        exponents=(tuple(exponents) if exponents is not None
                   else AGG_EXPONENTS),
        include_hotset=include_hotset,
        watermarks=(tuple(watermarks) if watermarks is not None
                    else AGG_WATERMARKS),
        routing=routing, table_words=table_words,
        n_updates=n_updates, window=window, flow_impl=flow_impl)


def _run_fig_interference(seed: int = 2017, pairs=None, fabrics=None,
                          tenants=None, nodes_per_tenant: int = 4,
                          flow_impl: str = "reference",
                          ib_leaf_size: int = 3, ib_uplinks: int = 2,
                          executor=None) -> Table:
    """Multi-tenant interference matrix (docs/tenancy.md).

    Ordered (victim, aggressor) workload pairs co-scheduled on one
    cluster; slowdown = co-scheduled victim runtime over its solo
    runtime on the same geometry.  ``tenants`` (a list of workload
    names) expands to all ordered pairs over those names and overrides
    ``pairs``.
    """
    from repro.tenancy.experiments import (default_pairs,
                                           interference_table)
    if tenants is not None:
        resolved = default_pairs(tuple(tenants))
    elif pairs is not None:
        resolved = tuple((str(v), str(a)) for v, a in pairs)
    else:
        resolved = default_pairs()
    return interference_table(
        executor, pairs=resolved,
        fabrics=(tuple(fabrics) if fabrics is not None
                 else ("dv", "mpi")),
        nodes_per_tenant=nodes_per_tenant, seed=seed,
        flow_impl=flow_impl, ib_leaf_size=ib_leaf_size,
        ib_uplinks=ib_uplinks)


REGISTRY: Dict[str, Experiment] = {
    e.exp_id: e for e in [
        Experiment(
            "fig3a", "ping-pong bandwidth vs message size",
            "1..256Ki 8-byte words; modes DWr/NoCached, DWr/Cached, "
            "DMA/Cached, MPI; 2 nodes",
            ("repro.kernels.pingpong", "repro.dv.api", "repro.ib.mpi"),
            "benchmarks/test_fig3_pingpong.py",
            "MPI higher at 32-128 words and >512 words; DV DMA/Cached "
            "reaches ~99% of its 4.4 GB/s peak at 256Ki words",
            _run_fig3),
        Experiment(
            "fig3b", "ping-pong bandwidth as % of nominal peak",
            "same sweep; peaks 4.4 GB/s (DV) and 6.8 GB/s (IB)",
            ("repro.kernels.pingpong", "repro.core.metrics"),
            "benchmarks/test_fig3_pingpong.py",
            "DV ~99% of peak vs MPI ~72% at 256Ki words",
            _run_fig3),
        Experiment(
            "fig4", "global barrier latency at scale",
            "2..32 nodes; DV intrinsic, Fast Barrier, MPI_Barrier",
            ("repro.kernels.barrier_bench", "repro.dv.barrier",
             "repro.ib.collectives"),
            "benchmarks/test_fig4_barrier.py",
            "DV flat (<1us); MPI grows steeply past 8 nodes to >10us",
            _run_fig4),
        Experiment(
            "fig5", "GUPS execution trace (Extrae-style)",
            "MPI GUPS, 4 nodes, traced",
            ("repro.core.trace", "repro.kernels.gups"),
            "benchmarks/test_fig5_trace.py",
            "no destination regularity to aggregate",
            None),
        Experiment(
            "fig6a", "GUPS per processing element",
            "weak scaling, 2^14 table words/node, 1024-update window, "
            "4..32 nodes",
            ("repro.kernels.gups",),
            "benchmarks/test_fig6_gups.py",
            "DV roughly flat; MPI decays steadily",
            _run_fig6),
        Experiment(
            "fig6b", "aggregate GUPS",
            "same sweep",
            ("repro.kernels.gups",),
            "benchmarks/test_fig6_gups.py",
            "DV aggregate scales; gap over MPI widens with nodes",
            _run_fig6),
        Experiment(
            "fig7", "FFT-1D aggregate GFLOPS",
            "2^18 points (paper: 2^33), four-step algorithm, 2..32 nodes",
            ("repro.kernels.fft1d",),
            "benchmarks/test_fig7_fft.py",
            "DV above MPI at every node count; gap widens",
            _run_fig7),
        Experiment(
            "fig8", "Graph500 harmonic-mean TEPS",
            "Kronecker scale 11+log2(P), edgefactor 16, 3 roots "
            "(paper: 64)",
            ("repro.kernels.bfs", "repro.kernels.kronecker"),
            "benchmarks/test_fig8_bfs.py",
            "DV above MPI with widening gap",
            _run_fig8),
        Experiment(
            "fig9", "application speedup DV vs MPI",
            "SNAP (best-effort port), Vorticity + Heat (restructured), "
            "32 nodes",
            ("repro.apps.snap", "repro.apps.vorticity",
             "repro.apps.heat"),
            "benchmarks/test_fig9_apps.py",
            "SNAP ~1.19x; restructured apps 2.46x-3.41x",
            _run_fig9),
        Experiment(
            "fig_scaleout", "cluster projection: 64-1024 nodes",
            "GUPS/BFS/FFT weak scaling on both fabrics, 64..1024 "
            "nodes, pooled fast flow engines",
            ("repro.core.scaling", "repro.dv.fastflow",
             "repro.ib.fastfabric"),
            "benchmarks/test_perf_regression.py",
            "per-PE DV rates stay near-flat across five doublings; "
            "MPI per-PE rates decay (SS IX extended)",
            _run_fig_scaleout),
        Experiment(
            "fig_skew", "GUPS vs destination skew (DV/IB ratio)",
            "GUPS under uniform / Zipf(0.6, 1.2, 1.8) / hot-set "
            "destination distributions, both fabrics",
            ("repro.traffic", "repro.kernels.gups"),
            "benchmarks/test_perf_regression.py",
            "deflection routing degrades gracefully as destinations "
            "concentrate; the fat-tree serialises on the hot node, so "
            "the DV/IB ratio widens with skew ([14]/[15] extended)",
            _run_fig_skew),
        Experiment(
            "fig_agg", "aggregated IB vs Data Vortex (crossover)",
            "GUPS under the skew levels with the repro.agg "
            "destination-coalescing runtime swept across watermarks "
            "on IB; un-aggregated DV/IB baselines per row",
            ("repro.agg", "repro.kernels.gups", "repro.traffic"),
            "benchmarks/test_perf_regression.py",
            "software coalescing rescues IB wherever per-message "
            "overhead dominates — uniform traffic crosses over at "
            "watermark >= 1024 (~1.5x DV, message ratio ~60x) and the "
            "hot-set at 8192 — but steeply skewed Zipf stays below DV "
            "even fully aggregated: fat frames amortise software "
            "overhead, not hot-receiver serialisation (Traff-style "
            "aggregation applied to the paper's §V irregularity "
            "argument)",
            _run_fig_agg),
        Experiment(
            "fig_interference", "multi-tenant co-scheduled slowdown",
            "regular x irregular workload pairs (GUPS, BFS, FFT, "
            "SNAP-style scan) co-scheduled on one cluster; slowdown = "
            "co-scheduled runtime / solo runtime per fabric",
            ("repro.tenancy", "repro.kernels.gups", "repro.kernels.bfs",
             "repro.kernels.fft1d", "repro.apps.snap"),
            "benchmarks/test_perf_regression.py",
            "the flat deflection fabric isolates co-tenants (DV "
            "slowdowns ~1.0: contention prices into per-hop latency "
            "only), while the oversubscribed fat tree's shared leaf "
            "uplinks do not — straddled-leaf tenants slow each other "
            "by tens of percent (SS II deflection argument under "
            "co-location)",
            _run_fig_interference),
    ]
}


def run_experiment(exp_id: str, executor=None, **kwargs) -> Table:
    """Regenerate one experiment's data by id.

    With an :class:`~repro.exec.Executor` carrying a cache, the whole
    figure table is memoised under (experiment id, kwargs, repro
    version): a re-run of an already-computed figure performs zero
    simulation work.
    """
    exp = REGISTRY.get(exp_id)
    if exp is None:
        raise KeyError(f"unknown experiment {exp_id!r}; "
                       f"known: {sorted(REGISTRY)}")
    if exp.runner is None:
        raise ValueError(f"{exp_id} has no table runner "
                         f"(see {exp.bench})")
    if executor is None:
        return exp.runner(**kwargs)
    return executor.call(exp.runner, name=f"experiment.{exp_id}",
                         **kwargs)


def _experiment_point(exp_id: str, **kwargs) -> Table:
    """Module-level runner so figure grids pickle into pool workers."""
    return REGISTRY[exp_id].runner(**kwargs)


def run_experiments(exp_ids, executor=None, **kwargs) -> Dict[str, Table]:
    """Regenerate several experiments, fanning whole figures across the
    executor's worker pool (each figure is one point)."""
    from repro.exec import Executor
    executor = executor or Executor()
    runnable = []
    for exp_id in exp_ids:
        exp = REGISTRY.get(exp_id)
        if exp is None:
            raise KeyError(f"unknown experiment {exp_id!r}; "
                           f"known: {sorted(REGISTRY)}")
        if exp.runner is None:
            raise ValueError(f"{exp_id} has no table runner "
                             f"(see {exp.bench})")
        runnable.append(exp_id)
    grid = [{"exp_id": e, **kwargs} for e in runnable]
    tables = executor.map(_experiment_point, grid,
                          name="experiment.batch")
    return dict(zip(runnable, tables))


def index_table() -> Table:
    """The DESIGN.md experiment index as a renderable table."""
    t = Table("Experiment index", ["id", "artifact", "bench"])
    for exp_id in sorted(REGISTRY):
        e = REGISTRY[exp_id]
        t.add_row(e.exp_id, e.title, e.bench)
    return t
