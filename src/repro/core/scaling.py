"""Scale-up study — the validation the paper's §IX leaves as future work.

The paper argues that Data Vortex network properties should be preserved
when scaling up: "Each doubling of nodes would add an additional
'cylinder' to the Data Vortex Switch ... Those additional hops through
the switch structure would (minimally) increase latency but should not
change overall throughput per node.  Developing and validating such a
simulation is beyond the scope of this paper."

This module develops exactly that simulation, at two levels:

* :func:`switch_scaling` — cycle-accurate switches from 16 to 256+
  ports under saturating uniform-random load: measures mean latency
  (expected: + ~1 hop per doubling) and per-port drain throughput
  (expected: flat);
* :func:`cluster_scaling` — flow-level clusters beyond the paper's 32
  nodes running the barrier and GUPS kernels, checking that the flat
  barrier and per-PE GUPS curves extend.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.cluster import ClusterSpec
from repro.dv.fastswitch import FastCycleSwitch
from repro.dv.topology import DataVortexTopology


@dataclass
class SwitchScalePoint:
    """One switch size in the cycle-accurate scaling study."""

    ports: int
    cylinders: int
    mean_latency_cycles: float
    mean_hops: float
    mean_deflections: float
    throughput_per_port: float    #: packets/cycle/port sustained
    drain_cycles: int


def switch_scale_point(height: int, angles: int = 2, per_port: int = 64,
                       seed: int = 7) -> Dict[str, float]:
    """One switch size under saturating uniform-random load.

    A module-level runner so the scaling grid pickles into pool workers
    and caches; the RNG is seeded per point (from ``seed`` and the
    point's parameters), making every point's result independent of
    which process computes it or in what order.
    """
    rng = random.Random(f"{seed}|{height}|{angles}|{per_port}")
    topo = DataVortexTopology(height=height, angles=angles)
    sw = FastCycleSwitch(topo)
    for src in range(topo.ports):
        for _ in range(per_port):
            sw.inject(src, rng.randrange(topo.ports))
    sw.run_until_drained(max_cycles=10_000_000)
    total = per_port * topo.ports
    return {
        "ports": topo.ports,
        "cylinders": topo.cylinders,
        "mean_latency_cycles": sw.stats.mean_latency_cycles,
        "mean_hops": sw.stats.mean_hops,
        "mean_deflections": sw.stats.mean_deflections,
        "throughput_per_port": total / sw.cycle / topo.ports,
        "drain_cycles": sw.cycle,
    }


def switch_scaling(heights: Sequence[int] = (8, 16, 32, 64, 128),
                   angles: int = 2, per_port: int = 64,
                   seed: int = 7,
                   executor: Optional["Executor"] = None
                   ) -> List[SwitchScalePoint]:
    """Cycle-accurate study of the switch across sizes.

    Every port injects ``per_port`` packets at uniformly random
    destinations; the switch runs until drained.  Points are
    independent, so an :class:`~repro.exec.Executor` with workers/cache
    fans them out; the returned order always follows ``heights``.
    """
    from repro.exec import Executor
    executor = executor or Executor()
    grid = [{"height": h, "angles": angles, "per_port": per_port,
             "seed": seed} for h in heights]
    rows = executor.map(switch_scale_point, grid)
    return [SwitchScalePoint(**row) for row in rows]


def verify_scaling_claim(points: List[SwitchScalePoint],
                         latency_slack_hops: float = 4.0,
                         throughput_tolerance: float = 0.35) -> Dict:
    """Check §IX's prediction against the measurements.

    * latency grows by roughly one hop per doubling (within slack);
    * per-port throughput varies by less than ``throughput_tolerance``
      across all sizes.

    Returns a summary dict; raises AssertionError when the claim fails.
    """
    for a, b in zip(points, points[1:]):
        grew = b.mean_hops - a.mean_hops
        added_cylinders = b.cylinders - a.cylinders
        if not (0 < grew <= added_cylinders + latency_slack_hops):
            raise AssertionError(
                f"latency growth {grew:.2f} hops from {a.ports} to "
                f"{b.ports} ports outside expectations")
    rates = [p.throughput_per_port for p in points]
    spread = (max(rates) - min(rates)) / max(rates)
    if spread > throughput_tolerance:
        raise AssertionError(
            f"per-port throughput varies {spread:.0%} across sizes — "
            f"the flat-throughput claim fails")
    return {
        "hops_per_doubling": [
            b.mean_hops - a.mean_hops for a, b in zip(points, points[1:])],
        "throughput_spread": spread,
    }


def cluster_scale_point(n_nodes: int, seed: int = 2017
                        ) -> Dict[str, float]:
    """One flow-level cluster size: DV barrier latency + GUPS per PE."""
    from repro.kernels.barrier_bench import run_barrier_bench
    from repro.kernels.gups import run_gups

    spec = ClusterSpec(n_nodes=n_nodes, seed=seed)
    barrier = run_barrier_bench(spec, "dv", iters=8)
    gups = run_gups(spec, "dv", table_words=1 << 12, n_updates=1 << 11)
    return {
        "barrier_us": barrier["latency_us"],
        "gups_mups_per_pe": gups["mups_per_pe"],
    }


def cluster_scaling(node_counts: Sequence[int] = (8, 16, 32, 64, 128),
                    seed: int = 2017,
                    executor: Optional["Executor"] = None
                    ) -> Dict[int, Dict[str, float]]:
    """Flow-level extrapolation beyond the paper's 32 nodes.

    For each cluster size, measures the DV hardware-barrier latency and
    the DV GUPS per-PE rate (weak scaling).  The §IX claim extends the
    paper's Fig. 4 and Fig. 6a flatness to larger machines.
    """
    from repro.exec import Executor
    executor = executor or Executor()
    grid = [{"n_nodes": n, "seed": seed} for n in node_counts]
    rows = executor.map(cluster_scale_point, grid)
    return {n: row for n, row in zip(node_counts, rows)}
