"""Scale-up study — the validation the paper's §IX leaves as future work.

The paper argues that Data Vortex network properties should be preserved
when scaling up: "Each doubling of nodes would add an additional
'cylinder' to the Data Vortex Switch ... Those additional hops through
the switch structure would (minimally) increase latency but should not
change overall throughput per node.  Developing and validating such a
simulation is beyond the scope of this paper."

This module develops exactly that simulation, at two levels:

* :func:`switch_scaling` — cycle-accurate switches from 16 to 256+
  ports under saturating uniform-random load: measures mean latency
  (expected: + ~1 hop per doubling) and per-port drain throughput
  (expected: flat);
* :func:`cluster_scaling` — flow-level clusters beyond the paper's 32
  nodes running the barrier and GUPS kernels, checking that the flat
  barrier and per-PE GUPS curves extend;
* :func:`scaleout_sweep` — the full cluster projection: GUPS, BFS and
  FFT on **both** fabrics from 64 up to 1024 nodes, riding the pooled
  ``flow_impl="fast"`` engines (:mod:`repro.dv.fastflow` /
  :mod:`repro.ib.fastfabric`) that make thousand-node flow simulation
  tractable.  Points fan across an :class:`~repro.exec.Executor` pool
  and memoise in its cache; a :class:`~repro.faults.FaultPlan` can be
  installed per point (plans are applied *inside* the point so they
  survive the trip into pool workers).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.cluster import ClusterSpec
from repro.dv.fastswitch import FastCycleSwitch
from repro.dv.topology import DataVortexTopology


@dataclass
class SwitchScalePoint:
    """One switch size in the cycle-accurate scaling study."""

    ports: int
    cylinders: int
    mean_latency_cycles: float
    mean_hops: float
    mean_deflections: float
    throughput_per_port: float    #: packets/cycle/port sustained
    drain_cycles: int


def switch_scale_point(height: int, angles: int = 2, per_port: int = 64,
                       seed: int = 7) -> Dict[str, float]:
    """One switch size under saturating uniform-random load.

    A module-level runner so the scaling grid pickles into pool workers
    and caches; the RNG is seeded per point (from ``seed`` and the
    point's parameters), making every point's result independent of
    which process computes it or in what order.
    """
    rng = random.Random(f"{seed}|{height}|{angles}|{per_port}")
    topo = DataVortexTopology(height=height, angles=angles)
    sw = FastCycleSwitch(topo)
    for src in range(topo.ports):
        for _ in range(per_port):
            sw.inject(src, rng.randrange(topo.ports))
    sw.run_until_drained(max_cycles=10_000_000)
    total = per_port * topo.ports
    return {
        "ports": topo.ports,
        "cylinders": topo.cylinders,
        "mean_latency_cycles": sw.stats.mean_latency_cycles,
        "mean_hops": sw.stats.mean_hops,
        "mean_deflections": sw.stats.mean_deflections,
        "throughput_per_port": total / sw.cycle / topo.ports,
        "drain_cycles": sw.cycle,
    }


def switch_scaling(heights: Sequence[int] = (8, 16, 32, 64, 128),
                   angles: int = 2, per_port: int = 64,
                   seed: int = 7,
                   executor: Optional["Executor"] = None
                   ) -> List[SwitchScalePoint]:
    """Cycle-accurate study of the switch across sizes.

    Every port injects ``per_port`` packets at uniformly random
    destinations; the switch runs until drained.  Points are
    independent, so an :class:`~repro.exec.Executor` with workers/cache
    fans them out; the returned order always follows ``heights``.
    """
    from repro.exec import Executor
    executor = executor or Executor()
    grid = [{"height": h, "angles": angles, "per_port": per_port,
             "seed": seed} for h in heights]
    rows = executor.map(switch_scale_point, grid)
    return [SwitchScalePoint(**row) for row in rows]


def verify_scaling_claim(points: List[SwitchScalePoint],
                         latency_slack_hops: float = 4.0,
                         throughput_tolerance: float = 0.35) -> Dict:
    """Check §IX's prediction against the measurements.

    * latency grows by roughly one hop per doubling (within slack);
    * per-port throughput varies by less than ``throughput_tolerance``
      across all sizes.

    Returns a summary dict; raises AssertionError when the claim fails.
    """
    for a, b in zip(points, points[1:]):
        grew = b.mean_hops - a.mean_hops
        added_cylinders = b.cylinders - a.cylinders
        if not (0 < grew <= added_cylinders + latency_slack_hops):
            raise AssertionError(
                f"latency growth {grew:.2f} hops from {a.ports} to "
                f"{b.ports} ports outside expectations")
    rates = [p.throughput_per_port for p in points]
    spread = (max(rates) - min(rates)) / max(rates)
    if spread > throughput_tolerance:
        raise AssertionError(
            f"per-port throughput varies {spread:.0%} across sizes — "
            f"the flat-throughput claim fails")
    return {
        "hops_per_doubling": [
            b.mean_hops - a.mean_hops for a, b in zip(points, points[1:])],
        "throughput_spread": spread,
    }


def cluster_scale_point(n_nodes: int, seed: int = 2017
                        ) -> Dict[str, float]:
    """One flow-level cluster size: DV barrier latency + GUPS per PE."""
    from repro.kernels.barrier_bench import run_barrier_bench
    from repro.kernels.gups import run_gups

    spec = ClusterSpec(n_nodes=n_nodes, seed=seed)
    barrier = run_barrier_bench(spec, "dv", iters=8)
    gups = run_gups(spec, "dv", table_words=1 << 12, n_updates=1 << 11)
    return {
        "barrier_us": barrier["latency_us"],
        "gups_mups_per_pe": gups["mups_per_pe"],
    }


def cluster_scaling(node_counts: Sequence[int] = (8, 16, 32, 64, 128),
                    seed: int = 2017,
                    executor: Optional["Executor"] = None
                    ) -> Dict[int, Dict[str, float]]:
    """Flow-level extrapolation beyond the paper's 32 nodes.

    For each cluster size, measures the DV hardware-barrier latency and
    the DV GUPS per-PE rate (weak scaling).  The §IX claim extends the
    paper's Fig. 4 and Fig. 6a flatness to larger machines.
    """
    from repro.exec import Executor
    executor = executor or Executor()
    grid = [{"n_nodes": n, "seed": seed} for n in node_counts]
    rows = executor.map(cluster_scale_point, grid)
    return {n: row for n, row in zip(node_counts, rows)}


# ---------------------------------------------------- PDES partitioning ---

def partition_ports(n_nodes: int, shards: int, *, fabric: str = "dv",
                    dv: Optional["DVConfig"] = None,
                    ib: Optional["IBConfig"] = None) -> np.ndarray:
    """Topology-aware node → shard assignment for the PDES runner.

    Ports that share switch structure stay together: on the Data Vortex
    the unit is the cylinder *height* (the ``angles`` ports of one
    height row enter the switch together — see
    :class:`~repro.dv.topology.DataVortexTopology.port_coord`); on the
    fat tree it is the leaf switch (``leaf_size`` nodes per leaf).
    Units are split into ``shards`` contiguous, balanced runs.

    The assignment is a pure function of ``(n_nodes, shards,
    angles-or-leaf_size)`` — independent of which ranks run what — so
    it is stable under program-level relabelling (the property the
    partitioner edge-case tests pin).  ``shards`` may exceed the unit
    count, in which case trailing shards own no ports (the runner
    simply has nothing to run there).

    Returns an int64 array of length ``n_nodes``: ``shard_of[port]``.
    """
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if fabric == "dv":
        from repro.dv.config import DVConfig
        cfg = (dv or DVConfig()).scaled_to_ports(n_nodes)
        unit = cfg.angles
    elif fabric in ("ib", "mpi"):
        from repro.ib.config import IBConfig
        unit = (ib or IBConfig()).leaf_size
    else:
        raise ValueError(f'fabric must be "dv" or "mpi", got {fabric!r}')
    ports = np.arange(n_nodes, dtype=np.int64)
    groups = ports // unit
    n_groups = int(groups[-1]) + 1
    eff = min(shards, n_groups)
    return (groups * eff) // n_groups


def dv_lookahead_s(config: "DVConfig", n_ports: int) -> float:
    """Conservative PDES lookahead for the DV flow model.

    Every first arrival satisfies ``first_arrival = inj_start + gap +
    (hops + penalty) * hop`` with ``inj_start >= now``, ``gap >= hop``
    and ``penalty >= 0``, so the minimum cross-port latency is
    ``(1 + min_hops) * hop`` — the window width within which shards
    cannot affect each other.
    """
    from repro.dv.fastflow import hop_table
    cfg = config.scaled_to_ports(n_ports)
    topo = DataVortexTopology(height=cfg.height, angles=cfg.angles)
    return cfg.hop_time_s * (1 + int(hop_table(topo, n_ports).min()))


def ib_lookahead_s(config: "IBConfig") -> float:
    """Conservative PDES lookahead for the IB fabric.

    ``arrival = start + occupancy + wire + hops*hop_lat`` with
    ``start >= now``, ``occupancy >= msg_gap`` and ``hops >= 2``.
    """
    return (config.msg_gap_s + config.wire_latency_s
            + 2 * config.hop_latency_s)


# ------------------------------------------------- scale-out projection ---

#: Node counts of the cluster projection (§IX extended to a full rack
#: row: five doublings past the 32-node testbed).
SCALEOUT_NODES = (64, 128, 256, 512, 1024)

#: Workloads of the projection — the paper's three irregular kernels.
SCALEOUT_WORKLOADS = ("gups", "bfs", "fft")

SCALEOUT_FABRICS = ("dv", "mpi")


def scaleout_params(workload: str, n_nodes: int) -> Dict[str, int]:
    """Default kernel parameters for one projection point.

    Weak scaling, shrunk so the full 64-to-1024-node sweep stays
    tractable on a laptop: GUPS keeps a fixed per-node table and update
    count; BFS grows the Kronecker scale with ``log2(P)`` (constant
    vertices per node); FFT holds the smallest problem the four-step
    factorisation admits at each node count (``n1`` and ``n2`` must both
    divide by ``P``).
    """
    if workload == "gups":
        return {"table_words": 1 << 12, "n_updates": 1 << 7,
                "window": 256}
    if workload == "bfs":
        return {"scale": 6 + int(math.log2(n_nodes)), "n_roots": 1}
    if workload == "fft":
        return {"log2_points": max(16, 2 * math.ceil(math.log2(n_nodes)))}
    raise ValueError(f"unknown scale-out workload {workload!r}; "
                     f"known: {SCALEOUT_WORKLOADS}")


def scaleout_point(workload: str, fabric: str, n_nodes: int,
                   seed: int = 2017, flow_impl: str = "fast",
                   plan: Optional["FaultPlan"] = None, shards: int = 1,
                   **overrides) -> Dict[str, float]:
    """One (workload, fabric, node-count) projection point.

    Module-level and seeded from its own parameters so the grid pickles
    into pool workers and memoises in the result cache.  ``plan`` (a
    :class:`~repro.faults.FaultPlan`) is installed around the kernel run
    *here*, inside the point, so fault studies work identically under a
    serial executor and a process pool.  ``shards > 1`` runs the point
    on the multi-process PDES engine (:mod:`repro.sim.pdes`) —
    bit-identical results, wall-clock divided across cores.  Returns
    ``per_pe`` and ``total`` in the workload's natural rate unit (MUPS,
    MTEPS or GFLOPS) plus the simulated ``elapsed_s``.
    """
    from repro import faults
    from repro.kernels import run_bfs, run_fft1d, run_gups

    params = scaleout_params(workload, n_nodes)
    params.update(overrides)
    spec = ClusterSpec(n_nodes=n_nodes, seed=seed, flow_impl=flow_impl,
                       shards=shards)
    with faults.session(plan) if plan is not None else _null():
        if workload == "gups":
            r = run_gups(spec, fabric, **params)
            per_pe, total = r["mups_per_pe"], r["mups_total"]
        elif workload == "bfs":
            r = run_bfs(spec, fabric, **params)
            total = r["harmonic_teps"] / 1e6
            per_pe = total / n_nodes
        else:
            r = run_fft1d(spec, fabric, **params)
            total = r["gflops"]
            per_pe = total / n_nodes
    return {"workload": workload, "fabric": fabric, "nodes": n_nodes,
            "per_pe": per_pe, "total": total,
            "elapsed_s": r["elapsed_s"]}


class _null:
    """Minimal no-op context (``contextlib.nullcontext`` without the
    import at module scope)."""

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


def scaleout_sweep(workloads: Sequence[str] = SCALEOUT_WORKLOADS,
                   nodes: Sequence[int] = SCALEOUT_NODES,
                   fabrics: Sequence[str] = SCALEOUT_FABRICS,
                   seed: int = 2017, flow_impl: str = "fast",
                   plan: Optional["FaultPlan"] = None,
                   executor: Optional["Executor"] = None,
                   shards: int = 1,
                   **overrides) -> List[Dict[str, float]]:
    """The cluster projection grid: workloads x nodes x fabrics.

    Fans every point across the executor's worker pool and memoises in
    its cache (each point's identity is its full parameter set, so a
    re-run of an already-swept grid performs zero simulation work).
    Returns one row dict per point, ordered workload-major then
    node-count then fabric.  The full default grid — three workloads,
    five node counts to 1024, both fabrics — takes tens of minutes
    serial; use ``Executor(workers=N)`` to spread it.
    """
    from repro.exec import Executor
    executor = executor or Executor()
    grid = [{"workload": w, "fabric": f, "n_nodes": n, "seed": seed,
             "flow_impl": flow_impl, "plan": plan, "shards": shards,
             **overrides}
            for w in workloads for n in nodes for f in fabrics]
    return executor.map(scaleout_point, grid, name="scaling.scaleout")
