"""Core evaluation framework: cluster model, SPMD runner, metrics.

This package is the paper's "primary contribution" layer: the apparatus
for running one algorithm on both fabrics of the same cluster and
comparing them.  A :class:`ClusterSpec` describes the 32-node testbed
(§IV); :func:`run_spmd` executes a rank program against either network;
:mod:`repro.core.metrics` computes the units the figures report (GB/s,
MUPS, GFLOPS, GTEPS, speedup); :mod:`repro.core.trace` records the
per-rank execution traces behind Fig. 5.
"""

from repro.core.node import NodeModel
from repro.core.cluster import ClusterSpec, RunResult, run_spmd
from repro.core.context import RankContext
from repro.core.trace import Tracer, Span
from repro.core.metrics import (bandwidth_gbs, gflops_fft1d, gups,
                                harmonic_mean, speedup, teps)
from repro.core.report import Table

__all__ = [
    "ClusterSpec",
    "NodeModel",
    "RankContext",
    "RunResult",
    "Span",
    "Table",
    "Tracer",
    "bandwidth_gbs",
    "gflops_fft1d",
    "gups",
    "harmonic_mean",
    "run_spmd",
    "speedup",
    "teps",
]
