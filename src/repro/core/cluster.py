"""Cluster specification and the SPMD runner.

:class:`ClusterSpec` captures the testbed of paper §IV — a cluster whose
every node has *both* a Data Vortex VIC and an FDR InfiniBand HCA — and
:func:`run_spmd` executes one program on one fabric, building a fresh
engine and fresh device state per run (runs never share state, as on the
real machine where each benchmark invocation starts cold).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional

from repro.core.context import RankContext
from repro.core.node import NodeModel
from repro.core.trace import Tracer
from repro.dv.api import DataVortexAPI
from repro.dv.barrier import FastBarrier, HardwareBarrier
from repro.dv.config import DVConfig
from repro.dv.fastflow import FastFlowNetwork
from repro.dv.flow import FlowNetwork
from repro.dv.vic import VIC
from repro.ib.config import IBConfig
from repro.ib.fastfabric import FastIBFabric
from repro.ib.mpi import MPIRuntime
from repro.sim.engine import Engine

#: A rank program: generator function taking a RankContext.
Program = Callable[[RankContext], Generator]


@dataclass
class ClusterSpec:
    """Description of the dual-fabric cluster."""

    n_nodes: int = 32
    dv: DVConfig = field(default_factory=DVConfig)
    ib: IBConfig = field(default_factory=IBConfig)
    node: NodeModel = field(default_factory=NodeModel)
    seed: int = 2017
    trace: bool = False
    #: toggle the fat-tree static-routing contention model (ablation)
    ib_contention: bool = True
    #: flow-network implementation: ``"reference"`` (scalar, the model
    #: the tests were written against) or ``"fast"`` (pooled/vectorised,
    #: bit-identical — see :mod:`repro.dv.fastflow`); applies to both
    #: fabrics' flow-level models
    flow_impl: str = "reference"
    #: conservative-PDES shard count (:mod:`repro.sim.pdes`): ``> 1``
    #: partitions the simulation across OS processes, bit-identical to
    #: serial; requires ``flow_impl="fast"``.  ``1`` (the default) still
    #: honours a scoped ``pdes.session(n)`` override.
    shards: int = 1
    #: production-shaped load: a :class:`~repro.traffic.TrafficModel`
    #: (destination distribution + arrival process) the traffic-aware
    #: kernels honour.  ``None`` keeps every kernel on its legacy
    #: uniform-random closed-loop path, byte-for-byte (the goldens pin
    #: exactly that).  See docs/traffic.md.
    traffic: Optional["TrafficModel"] = None
    #: destination-coalescing aggregation: a
    #: :class:`~repro.agg.AggSpec` routes the irregular kernels' remote
    #: updates through the :mod:`repro.agg` runtime (per-destination
    #: buffers, watermark/timeout flushes, optional tree routing).
    #: ``None`` keeps every legacy kernel path byte-identical (a scoped
    #: ``agg.session(...)`` override still applies).  See
    #: docs/aggregation.md.
    aggregation: Optional["AggSpec"] = None

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.flow_impl not in ("reference", "fast"):
            raise ValueError(
                f'flow_impl must be "reference" or "fast", '
                f'got {self.flow_impl!r}')
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.shards > 1 and self.flow_impl != "fast":
            raise ValueError(
                'shards > 1 requires flow_impl="fast" (the sharded '
                "transports build on the pooled engines)")
        if self.traffic is not None:
            from repro.traffic.model import TrafficModel
            if not isinstance(self.traffic, TrafficModel):
                raise TypeError(
                    "traffic must be a repro.traffic.TrafficModel "
                    f"(got {type(self.traffic).__name__})")
        if self.aggregation is not None:
            from repro.agg import AggSpec
            if not isinstance(self.aggregation, AggSpec):
                raise TypeError(
                    "aggregation must be a repro.agg.AggSpec "
                    f"(got {type(self.aggregation).__name__})")

    @staticmethod
    def paper_testbed(**overrides) -> "ClusterSpec":
        """The 32-node system of §IV."""
        return ClusterSpec(n_nodes=32, **overrides)


@dataclass
class RunResult:
    """Outcome of one :func:`run_spmd` invocation."""

    values: List[Any]           #: per-rank program return values
    elapsed: float              #: simulated seconds until the last rank exits
    tracer: Tracer
    engine: Engine
    fabric: str
    #: network-level statistics object (FlowStats or FabricStats)
    net_stats: Any = None

    def value(self, rank: int = 0) -> Any:
        return self.values[rank]

    @property
    def max_value(self) -> Any:
        return max(self.values)


def run_spmd(spec: ClusterSpec, program: Program, fabric: str = "dv",
             max_events: Optional[int] = None) -> RunResult:
    """Run ``program`` once on every rank over the chosen fabric.

    Parameters
    ----------
    spec:
        The cluster to build.
    program:
        Generator function ``program(ctx)``.
    fabric:
        ``"dv"`` (Data Vortex) or ``"mpi"`` (MPI over InfiniBand).
    max_events:
        Optional runaway guard forwarded to the engine.
    """
    if fabric not in ("dv", "mpi"):
        raise ValueError(f'fabric must be "dv" or "mpi", got {fabric!r}')

    # Conservative-PDES dispatch: an explicit spec.shards wins; a spec
    # left at 1 honours the scoped pdes.session(n) override.  The
    # sharded runner raises ShardingFallback for anything it cannot
    # reproduce bit-identically, and this serial body is the fallback.
    shards = spec.shards
    if shards == 1:
        from repro.sim import pdes
        shards = pdes.session_shards() or 1
    if shards > 1 and spec.n_nodes > 1:
        from repro.sim import pdes
        from repro.sim.pdes.runner import run_spmd_sharded
        try:
            return run_spmd_sharded(spec, program, fabric, max_events,
                                    shards=shards)
        except pdes.ShardingFallback:
            pass

    # Tenancy determinism axis: inside a tenancy.shadow_session() the
    # whole run is routed through the co-scheduler as a single
    # full-width identity tenant, which must be bit-identical to the
    # serial body below (docs/tenancy.md).
    from repro import tenancy
    if tenancy.shadow_active():
        from repro.tenancy.runner import run_solo_shadow
        return run_solo_shadow(spec, program, fabric, max_events)

    engine = Engine()
    tracer = Tracer(enabled=spec.trace)
    n = spec.n_nodes

    contexts: List[RankContext] = []
    net_stats: Any = None
    if fabric == "dv":
        net_cls = (FastFlowNetwork if spec.flow_impl == "fast"
                   else FlowNetwork)
        network = net_cls(engine, spec.dv, n)
        vics = [VIC(engine, spec.dv, i, network) for i in range(n)]
        apis = [DataVortexAPI(engine, spec.dv, v, network) for v in vics]
        hw_barrier = HardwareBarrier(engine, spec.dv, vics, network)
        fast_barrier = FastBarrier(engine, spec.dv, vics, network)
        for api in apis:
            api.hw_barrier = hw_barrier
            api.fast_barrier_impl = fast_barrier
        for r in range(n):
            contexts.append(RankContext(engine, r, n, spec.node, tracer,
                                        spec.seed, dv=apis[r]))
        net_stats = network.stats
    else:
        fabric_cls = (FastIBFabric if spec.flow_impl == "fast"
                      else None)
        runtime = MPIRuntime(engine, spec.ib, n,
                             contention=spec.ib_contention,
                             fabric_cls=fabric_cls)
        for r in range(n):
            contexts.append(RankContext(engine, r, n, spec.node, tracer,
                                        spec.seed, mpi=runtime.endpoint(r)))
        net_stats = runtime.fabric.stats

    procs = [engine.process(program(ctx), name=f"rank{ctx.rank}")
             for ctx in contexts]
    engine.run(max_events=max_events)

    failures = []
    for p in procs:
        if not p.triggered:
            raise RuntimeError(
                f"deadlock: {p.name} never finished (fabric={fabric})")
        if not p.ok:
            failures.append(p)
    if failures:
        raise failures[0].value

    return RunResult(values=[p.value for p in procs], elapsed=engine.now,
                     tracer=tracer, engine=engine, fabric=fabric,
                     net_stats=net_stats)


def run_both(spec: ClusterSpec, program: Program) -> dict:
    """Convenience: run on both fabrics, return ``{"dv": ..., "mpi": ...}``."""
    return {"dv": run_spmd(spec, program, "dv"),
            "mpi": run_spmd(spec, program, "mpi")}
