"""Multi-seed replication statistics for simulation experiments.

A single simulation run is deterministic; statistical confidence comes
from replication over seeds (different workloads, placements, graphs).
:func:`replicate` runs an experiment across seeds and returns a
:class:`Summary` with mean, standard deviation and a normal-approximation
95% confidence interval — the numbers a paper table should carry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence


@dataclass(frozen=True)
class Summary:
    """Replication summary of one scalar metric."""

    n: int
    mean: float
    std: float
    ci95: float          #: half-width of the 95% confidence interval
    minimum: float
    maximum: float

    @property
    def rel_ci(self) -> float:
        """CI half-width relative to the mean (0 when mean is 0)."""
        return self.ci95 / abs(self.mean) if self.mean else 0.0

    def __str__(self) -> str:
        return f"{self.mean:.4g} +/- {self.ci95:.2g} (n={self.n})"


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of a sample."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("empty sample")
    n = len(vals)
    mean = sum(vals) / n
    if n > 1:
        var = sum((v - mean) ** 2 for v in vals) / (n - 1)
        std = math.sqrt(var)
        ci95 = 1.96 * std / math.sqrt(n)
    else:
        std = ci95 = 0.0
    return Summary(n=n, mean=mean, std=std, ci95=ci95,
                   minimum=min(vals), maximum=max(vals))


def replicate(runner: Callable[[int], Mapping[str, float]],
              seeds: Sequence[int]) -> Dict[str, Summary]:
    """Run ``runner(seed)`` for every seed; summarise each numeric field.

    Non-numeric result fields are ignored.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    samples: Dict[str, List[float]] = {}
    for seed in seeds:
        result = runner(int(seed))
        for key, value in result.items():
            if isinstance(value, bool) or not isinstance(
                    value, (int, float)):
                continue
            samples.setdefault(key, []).append(float(value))
    return {k: summarize(v) for k, v in samples.items()}
