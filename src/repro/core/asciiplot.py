"""Terminal line plots for the CLI and examples.

Minimal, dependency-free rendering of multi-series data as an ASCII
chart — enough to eyeball the shape of a figure without leaving the
terminal.  Supports linear or log-2 x axes (most paper figures sweep
powers of two) and a legend.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

_GLYPHS = "ox+*#@%&"


def _scale(v: float, lo: float, hi: float, size: int) -> int:
    if hi <= lo:
        return 0
    t = (v - lo) / (hi - lo)
    return min(size - 1, max(0, int(round(t * (size - 1)))))


def line_plot(x: Sequence[float],
              series: Dict[str, Sequence[float]],
              width: int = 72, height: int = 18,
              title: str = "", xlabel: str = "", ylabel: str = "",
              logx: bool = False, logy: bool = False) -> str:
    """Render one or more y-series over a shared x axis.

    Parameters
    ----------
    x:
        Shared x values (monotonically increasing).
    series:
        Mapping of label -> y values (same length as ``x``).
    logx / logy:
        Plot against log2(x) / log10(y) instead of raw values.
    """
    xs = list(x)
    if not xs:
        raise ValueError("empty x axis")
    for label, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {label!r} length mismatch")
    if not series:
        raise ValueError("need at least one series")
    if logx and any(v <= 0 for v in xs):
        raise ValueError("logx requires positive x values")

    fx = [math.log2(v) if logx else float(v) for v in xs]
    all_y = [v for ys in series.values() for v in ys]
    if logy:
        if any(v <= 0 for v in all_y):
            raise ValueError("logy requires positive y values")
        conv = math.log10
    else:
        conv = float
    fy = {lbl: [conv(v) for v in ys] for lbl, ys in series.items()}
    ylo = min(v for ys in fy.values() for v in ys)
    yhi = max(v for ys in fy.values() for v in ys)
    xlo, xhi = min(fx), max(fx)

    grid = [[" "] * width for _ in range(height)]
    for si, (lbl, ys) in enumerate(fy.items()):
        glyph = _GLYPHS[si % len(_GLYPHS)]
        pts = [(_scale(a, xlo, xhi, width),
                _scale(b, ylo, yhi, height)) for a, b in zip(fx, ys)]
        # connect consecutive points with interpolated marks
        for (c0, r0), (c1, r1) in zip(pts, pts[1:]):
            steps = max(abs(c1 - c0), abs(r1 - r0), 1)
            for k in range(steps + 1):
                c = c0 + (c1 - c0) * k // steps
                r = r0 + (r1 - r0) * k // steps
                if grid[height - 1 - r][c] == " ":
                    grid[height - 1 - r][c] = "."
        for c, r in pts:
            grid[height - 1 - r][c] = glyph

    def fmt(v: float) -> str:
        if logy:
            v = 10 ** v
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.01:
            return f"{v:.2g}"
        return f"{v:.3g}"

    lines: List[str] = []
    if title:
        lines.append(title)
    ytop, ybot = fmt(yhi), fmt(ylo)
    pad = max(len(ytop), len(ybot))
    for i, row in enumerate(grid):
        label = ytop if i == 0 else (ybot if i == height - 1 else "")
        lines.append(f"{label:>{pad}} |" + "".join(row))
    x0 = f"{xs[0]:g}"
    x1 = f"{xs[-1]:g}"
    axis = f"{'':>{pad}} +" + "-" * width
    lines.append(axis)
    gap = max(width - len(x0) - len(x1), 1)
    lines.append(f"{'':>{pad}}  {x0}{' ' * gap}{x1}"
                 + (f"   ({xlabel}{', log2' if logx else ''})"
                    if xlabel or logx else ""))
    legend = "   ".join(f"{_GLYPHS[i % len(_GLYPHS)]}={lbl}"
                        for i, lbl in enumerate(series))
    lines.append(f"{'':>{pad}}  {legend}"
                 + (f"   [{ylabel}{', log y' if logy else ''}]"
                    if ylabel or logy else ""))
    return "\n".join(lines)


def plot_table(table, x_col: str, y_cols: Optional[List[str]] = None,
               **kwargs) -> str:
    """Plot columns of a :class:`repro.core.report.Table`."""
    x = [float(v) for v in table.column(x_col)]
    y_cols = y_cols or [c for c in table.columns if c != x_col]
    series = {}
    for c in y_cols:
        try:
            series[c] = [float(v) for v in table.column(c)]
        except (TypeError, ValueError):
            continue  # non-numeric column
    kwargs.setdefault("xlabel", x_col)
    kwargs.setdefault("title", table.title)
    return line_plot(x, series, **kwargs)
