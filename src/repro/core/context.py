"""Per-rank execution context handed to SPMD programs.

A program is a generator function ``program(ctx)``; inside it, ``ctx``
gives access to:

* ``ctx.rank`` / ``ctx.size`` — SPMD identity;
* ``ctx.net`` — the selected network API (:class:`DataVortexAPI` or
  :class:`MPIEndpoint`), with ``ctx.dv`` / ``ctx.mpi`` set when the
  respective fabric was selected;
* ``ctx.compute(...)`` — charge host time from operation counts;
* ``ctx.timed(kind, gen)`` — drive a sub-generator while tracing it;
* ``ctx.rng`` — a deterministic per-rank random generator;
* ``ctx.barrier()`` — fabric-appropriate global barrier.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.core.node import NodeModel
from repro.core.trace import Tracer
from repro.sim.engine import Engine
from repro.sim.rng import rng_for


class RankContext:
    """Everything one rank's program can touch."""

    def __init__(self, engine: Engine, rank: int, size: int,
                 node: NodeModel, tracer: Tracer, seed: int,
                 dv=None, mpi=None) -> None:
        self.engine = engine
        self.rank = rank
        self.size = size
        self.node = node
        self.tracer = tracer
        self.dv = dv
        self.mpi = mpi
        self.net = dv if dv is not None else mpi
        self.rng: np.random.Generator = rng_for(seed, "rank", rank)
        self._marks: dict = {}

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self.engine.now

    @property
    def fabric(self) -> str:
        """Which network this run uses: ``"dv"`` or ``"mpi"``."""
        return "dv" if self.dv is not None else "mpi"

    # -- compute charging ---------------------------------------------------
    def compute(self, *, flops: float = 0.0, random_updates: int = 0,
                stream_bytes: float = 0.0, seconds: float = 0.0,
                dispatches: int = 0, label: str = "") -> Generator:
        """Charge host compute time and trace it as a compute span."""
        dt = self.node.time(flops=flops, random_updates=random_updates,
                            stream_bytes=stream_bytes, seconds=seconds,
                            dispatches=dispatches)
        t0 = self.engine.now
        if dt > 0:
            yield self.engine.timeout(dt)
        self.tracer.span(self.rank, t0, self.engine.now, "compute", label)

    def timed(self, kind: str, gen: Generator, label: str = "") -> Generator:
        """Run a sub-generator (e.g. an API call) under a traced span."""
        t0 = self.engine.now
        result = yield from gen
        self.tracer.span(self.rank, t0, self.engine.now, kind, label)
        return result

    def sleep(self, seconds: float) -> Generator:
        """Raw idle wait (not traced as compute)."""
        yield self.engine.timeout(seconds)

    # -- timing marks ------------------------------------------------------
    def mark(self, name: str) -> None:
        """Record the current time under ``name`` (per-rank stopwatch)."""
        self._marks[name] = self.engine.now

    def since(self, name: str) -> float:
        """Seconds elapsed since :meth:`mark` recorded ``name``."""
        return self.engine.now - self._marks[name]

    # -- fabric-neutral conveniences ----------------------------------------
    def barrier(self) -> Generator:
        """Global barrier on whichever fabric this run uses."""
        if self.dv is not None:
            yield from self.dv.barrier()
        else:
            yield from self.mpi.barrier()
