"""Parameter-sweep helper for experiments.

A tiny declarative layer used by the CLI (and available to users) to run
a benchmark function over a grid of parameters and collect rows into a
:class:`~repro.core.report.Table`.  Execution streams through
:class:`repro.exec.Executor`, so every sweep gains parallel fan-out and
on-disk result caching for free — with rows reassembled in point order
so the output is bit-identical to a serial run.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.core.report import Table


@dataclass
class Sweep:
    """A cartesian parameter sweep over a runner function.

    Parameters
    ----------
    runner:
        Called as ``runner(**params)``; must return a mapping of result
        fields.  Module-level functions parallelise and cache; lambdas
        and closures still work but run serially and uncached.
    axes:
        Ordered mapping of parameter name -> list of values.
    fixed:
        Extra keyword arguments passed to every invocation.
    """

    runner: Callable[..., Mapping[str, Any]]
    axes: Dict[str, Sequence[Any]]
    fixed: Dict[str, Any] = field(default_factory=dict)

    def points(self) -> List[Dict[str, Any]]:
        """All parameter combinations, in axis order."""
        names = list(self.axes)
        out = []
        for combo in itertools.product(*(self.axes[n] for n in names)):
            params = dict(zip(names, combo))
            params.update(self.fixed)
            out.append(params)
        return out

    def run(self, executor: Optional["Executor"] = None
            ) -> List[Dict[str, Any]]:
        """Execute every point; returns param+result dicts in grid order.

        ``executor`` carries the workers/cache policy; by default a
        serial uncached :class:`~repro.exec.Executor` is used, so the
        rows are identical whichever policy executes them.
        """
        from repro.exec import Executor
        executor = executor or Executor()
        points = self.points()
        results = executor.map(self.runner, points)
        rows = []
        for params, result in zip(points, results):
            row = {k: v for k, v in params.items() if k in self.axes}
            row.update(dict(result))
            rows.append(row)
        return rows

    def run_table(self, title: str, columns: Sequence[str],
                  executor: Optional["Executor"] = None) -> Table:
        """Run the sweep and render the chosen columns (the one place
        sweep output formatting lives; the CLI uses this)."""
        t = Table(title, columns)
        for row in self.run(executor=executor):
            t.add_row(*(row.get(c, "") for c in columns))
        return t

    def table(self, title: str, columns: Sequence[str],
              executor: Optional["Executor"] = None) -> Table:
        """Alias of :meth:`run_table` (kept for existing callers)."""
        return self.run_table(title, columns, executor=executor)


# -- named sweeps (CLI: ``repro sweep --name gups``) -------------------------
#
# Module-level runners so they pickle into pool workers and carry stable
# cache identities.

def gups_sweep_point(nodes: int, seed: int = 2017,
                     fabric: str = "dv") -> Dict[str, Any]:
    """One GUPS weak-scaling point (Fig. 6 shape)."""
    from repro.core.cluster import ClusterSpec
    from repro.kernels.gups import run_gups
    spec = ClusterSpec(n_nodes=nodes, seed=seed)
    r = run_gups(spec, fabric, table_words=1 << 14, n_updates=1 << 13)
    return {"mups_per_pe": r["mups_per_pe"],
            "mups_total": r["mups_total"]}


def barrier_sweep_point(nodes: int, seed: int = 2017,
                        impl: str = "dv") -> Dict[str, Any]:
    """One barrier-latency point (Fig. 4 shape)."""
    from repro.core.cluster import ClusterSpec
    from repro.kernels.barrier_bench import run_barrier_bench
    spec = ClusterSpec(n_nodes=nodes, seed=seed)
    return {"latency_us": run_barrier_bench(spec, impl,
                                            iters=8)["latency_us"]}


NAMED_SWEEPS: Dict[str, Dict[str, Any]] = {
    "gups": {
        "runner": gups_sweep_point,
        "axes": {"nodes": [4, 8, 16, 32]},
        "columns": ["nodes", "mups_per_pe", "mups_total"],
        "title": "GUPS weak scaling (MUPS)",
    },
    "barrier": {
        "runner": barrier_sweep_point,
        "axes": {"nodes": [2, 4, 8, 16, 32]},
        "columns": ["nodes", "latency_us"],
        "title": "DV barrier latency (us)",
    },
}


def named_sweep(name: str, axes: Optional[Dict[str, Sequence[Any]]] = None,
                fixed: Optional[Dict[str, Any]] = None) -> Sweep:
    """Build one of the :data:`NAMED_SWEEPS` (CLI entry point)."""
    try:
        spec = NAMED_SWEEPS[name]
    except KeyError:
        raise KeyError(f"unknown sweep {name!r}; "
                       f"known: {sorted(NAMED_SWEEPS)}") from None
    return Sweep(runner=spec["runner"], axes=dict(axes or spec["axes"]),
                 fixed=dict(fixed or {}))
