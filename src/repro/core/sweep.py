"""Parameter-sweep helper for experiments.

A tiny declarative layer used by the CLI (and available to users) to run
a benchmark function over a grid of parameters and collect rows into a
:class:`~repro.core.report.Table`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Sequence

from repro.core.report import Table


@dataclass
class Sweep:
    """A cartesian parameter sweep over a runner function.

    Parameters
    ----------
    runner:
        Called as ``runner(**params)``; must return a mapping of result
        fields.
    axes:
        Ordered mapping of parameter name -> list of values.
    fixed:
        Extra keyword arguments passed to every invocation.
    """

    runner: Callable[..., Mapping[str, Any]]
    axes: Dict[str, Sequence[Any]]
    fixed: Dict[str, Any] = field(default_factory=dict)

    def points(self) -> List[Dict[str, Any]]:
        """All parameter combinations, in axis order."""
        names = list(self.axes)
        out = []
        for combo in itertools.product(*(self.axes[n] for n in names)):
            params = dict(zip(names, combo))
            params.update(self.fixed)
            out.append(params)
        return out

    def run(self) -> List[Dict[str, Any]]:
        """Execute every point; returns param+result dicts."""
        rows = []
        for params in self.points():
            result = dict(self.runner(**params))
            row = {k: v for k, v in params.items()
                   if k in self.axes}
            row.update(result)
            rows.append(row)
        return rows

    def table(self, title: str, columns: Sequence[str]) -> Table:
        """Run the sweep and render the chosen columns."""
        rows = self.run()
        t = Table(title, columns)
        for row in rows:
            t.add_row(*(row.get(c, "") for c in columns))
        return t
