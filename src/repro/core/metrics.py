"""Units and statistics used by the paper's figures.

Each helper corresponds to an axis in the evaluation section:

* Fig. 3 — bandwidth in GB/s and percent of nominal peak;
* Fig. 4 — barrier latency (µs);
* Fig. 6 — updates/s (GUPS benchmark reports MUPS per PE and aggregate);
* Fig. 7 — aggregate GFLOPS for the 1-D FFT (the HPCC operation count);
* Fig. 8 — traversed edges per second, harmonic-mean over search roots
  (the Graph500 rule);
* Fig. 9 — speedup of Data Vortex over MPI-over-InfiniBand.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def bandwidth_gbs(nbytes: float, seconds: float) -> float:
    """Payload bandwidth in GB/s (decimal GB, as the paper plots)."""
    if seconds <= 0:
        raise ValueError("non-positive duration")
    return nbytes / seconds / 1e9


def percent_of_peak(bw_bytes_per_s: float, peak_bytes_per_s: float) -> float:
    """Bandwidth as a percentage of nominal peak (Fig. 3b)."""
    if peak_bytes_per_s <= 0:
        raise ValueError("non-positive peak")
    return 100.0 * bw_bytes_per_s / peak_bytes_per_s


def gups(n_updates: int, seconds: float) -> float:
    """Giga-updates per second."""
    if seconds <= 0:
        raise ValueError("non-positive duration")
    return n_updates / seconds / 1e9


def mups(n_updates: int, seconds: float) -> float:
    """Mega-updates per second (the unit on Fig. 6's axis)."""
    return gups(n_updates, seconds) * 1e3


def fft1d_flops(n_points: int) -> float:
    """HPCC operation count for a complex 1-D FFT: ``5 N log2 N``."""
    if n_points < 2:
        raise ValueError("FFT needs at least 2 points")
    return 5.0 * n_points * math.log2(n_points)


def gflops_fft1d(n_points: int, seconds: float) -> float:
    """Aggregate GFLOPS of a distributed 1-D FFT (Fig. 7's axis)."""
    if seconds <= 0:
        raise ValueError("non-positive duration")
    return fft1d_flops(n_points) / seconds / 1e9


def teps(n_edges_traversed: int, seconds: float) -> float:
    """Traversed edges per second for one BFS root."""
    if seconds <= 0:
        raise ValueError("non-positive duration")
    return n_edges_traversed / seconds


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean (the Graph500 aggregation across search roots)."""
    vals = list(values)
    if not vals:
        raise ValueError("empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("harmonic mean requires positive values")
    return len(vals) / sum(1.0 / v for v in vals)


def speedup(baseline_seconds: float, candidate_seconds: float) -> float:
    """Execution-time speedup of candidate over baseline (Fig. 9)."""
    if baseline_seconds <= 0 or candidate_seconds <= 0:
        raise ValueError("non-positive duration")
    return baseline_seconds / candidate_seconds


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (summary statistic for speedup collections)."""
    vals = list(values)
    if not vals:
        raise ValueError("empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
