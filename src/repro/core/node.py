"""Host compute-node cost model.

The testbed node (§IV): dual Intel E5-2623v3 (2 sockets x 4 cores x 2
threads, 3.0 GHz Haswell-EP), 160 GB across two NUMA domains.  Since
every benchmark in the paper is communication-dominated and the *same*
host code runs on both fabrics, compute costs only need to be consistent,
not cycle-exact: we charge time from operation counts with sustained-rate
constants typical of this CPU generation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class NodeModel:
    """Sustained-rate cost model of one cluster node."""

    #: Sustained double-precision FLOP rate of the whole node (8 cores
    #: with FMA at 3 GHz peak ~192 GF; sustained on FFT-like kernels is
    #: far lower).
    flops_per_s: float = 40e9
    #: Random 8-byte read-modify-write updates per second against the
    #: 160 GB working set (DRAM latency bound; both NUMA domains).
    random_updates_per_s: float = 120e6
    #: Streaming memory bandwidth (bytes/s, dual-socket DDR4).
    stream_bw: float = 60e9
    #: Fixed per-software-iteration overhead (loop dispatch etc.).
    dispatch_s: float = 0.05e-6

    def time_flops(self, flops: float) -> float:
        """Seconds to execute ``flops`` floating-point operations."""
        if flops < 0:
            raise ValueError("negative flops")
        return flops / self.flops_per_s

    def time_random_updates(self, n: int) -> float:
        """Seconds for ``n`` random-access read-modify-writes."""
        if n < 0:
            raise ValueError("negative update count")
        return n / self.random_updates_per_s

    def time_stream(self, nbytes: float) -> float:
        """Seconds to stream ``nbytes`` through memory."""
        if nbytes < 0:
            raise ValueError("negative byte count")
        return nbytes / self.stream_bw

    def time(self, *, flops: float = 0.0, random_updates: int = 0,
             stream_bytes: float = 0.0, seconds: float = 0.0,
             dispatches: int = 0) -> float:
        """Combined cost of one compute region (components are additive:
        the kernels these model do not overlap FP and memory phases)."""
        return (self.time_flops(flops)
                + self.time_random_updates(random_updates)
                + self.time_stream(stream_bytes)
                + dispatches * self.dispatch_s
                + seconds)
