"""Plain-text table/series rendering for the benchmark harness.

Every figure-regeneration benchmark prints its data through
:class:`Table`, so running ``pytest benchmarks/ --benchmark-only -s``
reproduces the paper's figures as aligned text series that can be
diffed, plotted, or pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


class Table:
    """Aligned text table with a title (one per figure)."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        if not columns:
            raise ValueError("need at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[Any]] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns")
        self.rows.append(list(values))

    @staticmethod
    def _fmt(v: Any) -> str:
        if isinstance(v, float):
            if v == 0:
                return "0"
            if abs(v) >= 1000 or abs(v) < 0.01:
                return f"{v:.3g}"
            return f"{v:.3f}"
        return str(v)

    def render(self) -> str:
        cells = [[self._fmt(v) for v in row] for row in self.rows]
        widths = [max(len(c), *(len(r[i]) for r in cells)) if cells
                  else len(c)
                  for i, c in enumerate(self.columns)]
        sep = "-+-".join("-" * w for w in widths)
        head = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines = [f"== {self.title} ==", head, sep]
        for row in cells:
            lines.append(" | ".join(c.rjust(w) for c, w in
                                    zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()

    def column(self, name: str) -> List[Any]:
        """Extract one column's values (for assertions in benchmarks)."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def to_csv(self) -> str:
        """CSV text (header + rows)."""
        out = [",".join(self.columns)]
        for row in self.rows:
            out.append(",".join(self._fmt(v) for v in row))
        return "\n".join(out)
