"""Plain-text table/series rendering for the benchmark harness.

Every figure-regeneration benchmark prints its data through
:class:`Table`, so running ``pytest benchmarks/ --benchmark-only -s``
reproduces the paper's figures as aligned text series that can be
diffed, plotted, or pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Mapping, Sequence, Tuple


class Table:
    """Aligned text table with a title (one per figure)."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        if not columns:
            raise ValueError("need at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[Any]] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns")
        self.rows.append(list(values))

    @staticmethod
    def _fmt(v: Any) -> str:
        if isinstance(v, float):
            if v == 0:
                return "0"
            if abs(v) >= 1000 or abs(v) < 0.01:
                return f"{v:.3g}"
            return f"{v:.3f}"
        return str(v)

    def render(self) -> str:
        cells = [[self._fmt(v) for v in row] for row in self.rows]
        widths = [max(len(c), *(len(r[i]) for r in cells)) if cells
                  else len(c)
                  for i, c in enumerate(self.columns)]
        sep = "-+-".join("-" * w for w in widths)
        head = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines = [f"== {self.title} ==", head, sep]
        for row in cells:
            lines.append(" | ".join(c.rjust(w) for c, w in
                                    zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()

    def column(self, name: str) -> List[Any]:
        """Extract one column's values (for assertions in benchmarks)."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def to_csv(self) -> str:
        """CSV text (header + rows)."""
        out = [",".join(self.columns)]
        for row in self.rows:
            out.append(",".join(self._fmt(v) for v in row))
        return "\n".join(out)

    # -- structural (de)serialisation -----------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (title/columns/rows) for JSON storage.

        The executor's result cache and the golden-snapshot store both
        persist tables through this exact shape, so a table survives a
        JSON round-trip bit-identically (ints stay ints, floats
        round-trip through ``repr``)."""
        return {"title": self.title, "columns": list(self.columns),
                "rows": [list(row) for row in self.rows]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Table":
        """Rebuild a table from :meth:`to_dict` output."""
        t = cls(data["title"], data["columns"])
        for row in data["rows"]:
            t.add_row(*row)
        return t

    # -- cell-level comparison ------------------------------------------
    def same_shape(self, other: "Table") -> bool:
        """Do two tables have identical columns and row count?"""
        return (self.columns == other.columns
                and len(self.rows) == len(other.rows))

    def diff(self, other: "Table") -> Iterator[Tuple[int, str, Any, Any]]:
        """Yield ``(row_index, column, self_value, other_value)`` for
        every cell where the two tables disagree exactly.

        Shapes must match (:meth:`same_shape`); callers that need a
        tolerance-aware or shape-tolerant comparison build on this
        (see :mod:`repro.golden.policy`)."""
        if not self.same_shape(other):
            raise ValueError(
                f"cannot diff tables of different shape: "
                f"{self.columns}x{len(self.rows)} vs "
                f"{other.columns}x{len(other.rows)}")
        for i, (a_row, b_row) in enumerate(zip(self.rows, other.rows)):
            for col, a, b in zip(self.columns, a_row, b_row):
                if a != b or type(a) is not type(b):
                    yield (i, col, a, b)
