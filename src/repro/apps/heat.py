"""3-D heat equation with domain decomposition (paper §VII).

Explicit FTCS stepping of ``u_t = alpha * laplace(u)`` on a periodic
cube, decomposed over a 3-D process grid: every rank exchanges six halo
faces per step — "a large number of small messages" (§VII).

* **MPI version**: six non-blocking face exchanges per step (isend/irecv
  against the ±x, ±y, ±z neighbours), each paying per-message software
  overhead and, for faces above the eager threshold, a rendezvous
  handshake.

* **Data Vortex version** (restructured): all six faces leave in *one*
  source-aggregated DMA per step, landing directly in the neighbours' DV
  memory; arrival is detected with double-buffered group counters (even/
  odd step parity), so steady-state stepping needs no barrier at all.

Validation: the decay of a periodic sine mode matches the exact FTCS
amplification factor, and the distributed field equals a serial stepper
bit for bit.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Tuple

import numpy as np

from repro.core.cluster import ClusterSpec, run_spmd
from repro.core.context import RankContext

_CTR_EVEN = 50
_CTR_ODD = 51
_CTR_RES_EVEN = 52
_CTR_RES_ODD = 53


def process_grid(p: int) -> Tuple[int, int, int]:
    """Factor ``p`` into three near-equal factors (largest first)."""
    best = (p, 1, 1)
    for a in range(1, int(round(p ** (1 / 3))) + 2):
        if p % a:
            continue
        q = p // a
        for b in range(a, int(q ** 0.5) + 2):
            if q % b:
                continue
            c = q // b
            if c >= b >= a:
                cand = (c, b, a)
                if max(cand) - min(cand) < max(best) - min(best):
                    best = cand
    return best


def _coords(rank: int, grid: Tuple[int, int, int]) -> Tuple[int, int, int]:
    px, py, pz = grid
    return (rank // (py * pz), (rank // pz) % py, rank % pz)


def _rank_of(c: Tuple[int, int, int], grid: Tuple[int, int, int]) -> int:
    px, py, pz = grid
    return (c[0] % px) * py * pz + (c[1] % py) * pz + (c[2] % pz)


def _neighbours(rank: int, grid: Tuple[int, int, int]) -> List[int]:
    """The six periodic neighbours in order -x,+x,-y,+y,-z,+z."""
    x, y, z = _coords(rank, grid)
    return [
        _rank_of((x - 1, y, z), grid), _rank_of((x + 1, y, z), grid),
        _rank_of((x, y - 1, z), grid), _rank_of((x, y + 1, z), grid),
        _rank_of((x, y, z - 1), grid), _rank_of((x, y, z + 1), grid),
    ]


def step_serial(u: np.ndarray, r: float) -> np.ndarray:
    """One periodic FTCS step on the full grid (reference)."""
    lap = (np.roll(u, 1, 0) + np.roll(u, -1, 0)
           + np.roll(u, 1, 1) + np.roll(u, -1, 1)
           + np.roll(u, 1, 2) + np.roll(u, -1, 2) - 6 * u)
    return u + r * lap


def initial_field(n: int) -> np.ndarray:
    """Periodic sine mode (its FTCS decay rate is known exactly)."""
    x = np.arange(n) * (2 * np.pi / n)
    return (np.sin(x)[:, None, None]
            * np.sin(x)[None, :, None]
            * np.sin(x)[None, None, :])


def _local_block(u: np.ndarray, rank: int, grid, n: int) -> np.ndarray:
    px, py, pz = grid
    bx, by, bz = n // px, n // py, n // pz
    x, y, z = _coords(rank, grid)
    return u[x * bx:(x + 1) * bx, y * by:(y + 1) * by,
             z * bz:(z + 1) * bz].copy()


def _faces_out(u: np.ndarray) -> List[np.ndarray]:
    """Outgoing boundary planes in order -x,+x,-y,+y,-z,+z."""
    return [u[0], u[-1], u[:, 0], u[:, -1], u[:, :, 0], u[:, :, -1]]


def _step_with_halos(u: np.ndarray, halos: List[np.ndarray],
                     r: float) -> np.ndarray:
    """FTCS update of the local block given the six neighbour faces
    (halos ordered -x,+x,-y,+y,-z,+z: the plane adjacent to that side)."""
    lap = -6.0 * u
    # -x neighbour face abuts u[0]; shifting down pulls it in
    lap += np.concatenate([halos[0][None], u[:-1]], axis=0)
    lap += np.concatenate([u[1:], halos[1][None]], axis=0)
    lap += np.concatenate([halos[2][:, None], u[:, :-1]], axis=1)
    lap += np.concatenate([u[:, 1:], halos[3][:, None]], axis=1)
    lap += np.concatenate([halos[4][:, :, None], u[:, :, :-1]], axis=2)
    lap += np.concatenate([u[:, :, 1:], halos[5][:, :, None]], axis=2)
    return u + r * lap


def _f2w(a: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(a, np.float64).view(np.uint64).ravel()


def _w2f(w: np.ndarray, shape) -> np.ndarray:
    return w.view(np.float64).reshape(shape)


def _heat_mpi(ctx: RankContext, u: np.ndarray, grid, r: float,
              steps: int) -> Generator:
    mpi = ctx.mpi
    nbrs = _neighbours(ctx.rank, grid)
    yield from ctx.barrier()
    ctx.mark("t0")
    opp = [1, 0, 3, 2, 5, 4]
    for s in range(steps):
        faces = _faces_out(u)
        # each side: send my face toward that side's neighbour, receive
        # the opposing plane (tag by side so periodic pairs
        # disambiguate).  A self-neighbour (grid dimension 1) is a
        # local periodic wrap — no message.
        sides = [i for i in range(6) if nbrs[i] != ctx.rank]
        sends = [mpi.isend(nbrs[i], faces[i], tag=1000 + s * 8 + i)
                 for i in sides]
        recvs = {i: mpi.irecv(nbrs[i], tag=1000 + s * 8 + opp[i])
                 for i in sides}
        halos = []
        for i in range(6):
            if i in recvs:
                data, _, _ = yield recvs[i]
                halos.append(data)
            else:
                halos.append(faces[opp[i]])
        for ev in sends:
            yield ev
        u_new = _step_with_halos(u, halos, r)
        yield from ctx.compute(flops=8.0 * u.size,
                               stream_bytes=8.0 * u.size * 2,
                               dispatches=6)
        # steady-state monitoring: global max |du| every step
        res = float(np.max(np.abs(u_new - u)))
        yield from ctx.compute(stream_bytes=8.0 * u.size, dispatches=1)
        res = yield from mpi.allreduce(res, max)
        u = u_new
    elapsed = ctx.since("t0")
    return {"elapsed": elapsed, "u": u, "residual": res}


def _heat_dv(ctx: RankContext, u: np.ndarray, grid, r: float,
             steps: int) -> Generator:
    api = ctx.dv
    nbrs = _neighbours(ctx.rank, grid)
    opp = [1, 0, 3, 2, 5, 4]
    face_words = [int(np.prod(f.shape)) for f in _faces_out(u)]
    # sides whose neighbour is another rank; self-neighbours (grid
    # dimension 1) wrap locally and never touch the network
    sides = [i for i in range(6) if nbrs[i] != ctx.rank]
    # DV-memory layout: per step parity, six slots of face data
    offs = np.concatenate([[0], np.cumsum(face_words)])
    parity_stride = int(offs[-1])
    #: incoming words per step (remote faces only)
    expected = sum(face_words[i] for i in sides)
    P = ctx.size
    res_base = 2 * parity_stride   # per-parity rank-indexed residual slots

    yield from api.set_counter(_CTR_EVEN, expected)
    yield from api.set_counter(_CTR_ODD, expected)
    if P > 1:
        yield from api.set_counter(_CTR_RES_EVEN, P - 1)
        yield from api.set_counter(_CTR_RES_ODD, P - 1)
    yield from ctx.barrier()
    ctx.mark("t0")
    for s in range(steps):
        ctr = _CTR_EVEN if s % 2 == 0 else _CTR_ODD
        base = (s % 2) * parity_stride
        faces = _faces_out(u)
        # one aggregated transfer: every remote face, all destinations.
        # face i lands in neighbour's slot for side opp[i] (my -x face is
        # their +x halo); self-neighbour faces wrap locally for free.
        if sides:
            dests = np.concatenate([
                np.full(face_words[i], nbrs[i], np.int64)
                for i in sides])
            addrs = np.concatenate([
                base + offs[opp[i]] + np.arange(face_words[i])
                for i in sides])
            values = np.concatenate([_f2w(faces[i]) for i in sides])
            yield from api.send_batch(dests, addrs, values, counter=ctr,
                                      cached_headers=True, via="dma")
        yield from api.wait_counter_zero(ctr)
        # overlapped multi-buffered drain; functional copy is free
        yield from api.drain_overlapped(max(expected, 1))
        words = api.vic.memory.read_range(base, parity_stride)
        # recycle the parity counter for step s + 2
        yield from api.set_counter(ctr, expected)
        halos = [_w2f(words[offs[i]:offs[i + 1]], faces[i].shape)
                 if nbrs[i] != ctx.rank else faces[opp[i]]
                 for i in range(6)]
        u_new = _step_with_halos(u, halos, r)
        yield from ctx.compute(flops=8.0 * u.size,
                               stream_bytes=8.0 * u.size * 2,
                               dispatches=6)
        # steady-state monitoring, restructured for the DV: every rank
        # writes its residual word into everyone's DV memory and reduces
        # locally — no tree collective, just P-1 fine-grained packets
        res = float(np.max(np.abs(u_new - u)))
        yield from ctx.compute(stream_bytes=8.0 * u.size, dispatches=1)
        if P > 1:
            rctr = _CTR_RES_EVEN if s % 2 == 0 else _CTR_RES_ODD
            rbase = res_base + (s % 2) * P
            others = np.array([d for d in range(P) if d != ctx.rank])
            word = np.float64(res).view(np.uint64)
            yield from api.send_batch(
                others, np.full(others.size, rbase + ctx.rank),
                np.full(others.size, word), counter=rctr,
                cached_headers=True, via="dma")
            yield from api.wait_counter_zero(rctr)
            yield from api.set_counter(rctr, P - 1)  # recycle for s + 2
            slot = api.vic.memory.read_range(rbase, P)
            slot[ctx.rank] = word
            # non-negative IEEE doubles order like their bit patterns
            res = float(slot.max().view(np.float64))
        u = u_new
    elapsed = ctx.since("t0")
    return {"elapsed": elapsed, "u": u, "residual": res}


def run_heat(spec: ClusterSpec, fabric: str, *, n: int = 32,
             steps: int = 10, r: float = 0.1, decomp: str = "3d",
             validate: bool = False) -> Dict[str, object]:
    """Run the heat-equation application on one fabric.

    ``n`` is the global cube edge; it must be divisible by each process-
    grid dimension.  ``r = alpha dt / h^2`` must be < 1/6 for stability.
    ``decomp`` picks the domain decomposition: ``"3d"`` (near-cubic
    process grid, six small faces per step — the paper's "large number
    of small messages") or ``"1d"`` (slabs along x, two big faces —
    the bandwidth-friendly layout used for the decomposition ablation).
    """
    if not 0 < r < 1 / 6:
        raise ValueError("FTCS stability requires 0 < r < 1/6")
    if decomp == "3d":
        grid = process_grid(spec.n_nodes)
    elif decomp == "1d":
        grid = (spec.n_nodes, 1, 1)
    else:
        raise ValueError('decomp must be "1d" or "3d"')
    if any(n % g for g in grid):
        raise ValueError(f"n={n} not divisible by process grid {grid}")
    u0 = initial_field(n)

    def program(ctx):
        u = _local_block(u0, ctx.rank, grid, n)
        if fabric == "dv":
            return (yield from _heat_dv(ctx, u, grid, r, steps))
        return (yield from _heat_mpi(ctx, u, grid, r, steps))

    res = run_spmd(spec, program, fabric)
    elapsed = max(v["elapsed"] for v in res.values)
    out: Dict[str, object] = {
        "fabric": fabric, "n_nodes": spec.n_nodes, "n": n,
        "steps": steps, "decomp": decomp, "elapsed_s": elapsed,
        "cell_steps_per_s": n ** 3 * steps / elapsed,
    }
    if validate:
        ref = u0
        for _ in range(steps):
            ref = step_serial(ref, r)
        px, py, pz = grid
        bx, by, bz = n // px, n // py, n // pz
        got = np.empty_like(u0)
        for rank, v in enumerate(res.values):
            x, y, z = _coords(rank, grid)
            got[x * bx:(x + 1) * bx, y * by:(y + 1) * by,
                z * bz:(z + 1) * bz] = v["u"]
        out["max_error"] = float(np.max(np.abs(got - ref)))
        out["valid"] = bool(np.allclose(got, ref, atol=1e-12))
    return out
