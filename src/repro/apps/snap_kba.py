"""SNAP with the full KBA (Koch–Baker–Alcouffe) 2-D decomposition.

The paper (§VII) says SNAP's 3-D spatial mesh is "distributed over a
set of MPI processes" and swept "along each direction of the angular
domain, generating a large number of messages".  The 1-D slab proxy in
:mod:`repro.apps.snap` captures the pipeline; this module implements
the real thing: a ``py x pz`` process grid, sweeps along x for all
eight octants, full 3-D diamond-difference transport, and *two*
boundary-plane streams per rank (one toward +/-y, one toward +/-z) per
angle chunk — exactly the traffic PARTISN generates.

The in-plane (y, z) dependency chain is swept by vectorised diagonal
wavefronts; the cross-rank dependency is the classic KBA 2-D pipeline.
The Data Vortex port runs each stream over a
:class:`~repro.apps.pipeline.CounterPipe`.

Validation: the distributed scalar flux equals a serial sweep of the
full mesh exactly, for every octant.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Tuple

import numpy as np

from repro.core.cluster import ClusterSpec, run_spmd
from repro.core.context import RankContext

_CTR_PIPE_Y = 47   # counters 47..50 (y pipe)
_CTR_PIPE_Z = 51   # counters 51..54 (z pipe)

#: the eight octants as direction signs (sx, sy, sz)
OCTANTS = [(sx, sy, sz) for sx in (1, -1) for sy in (1, -1)
           for sz in (1, -1)]


def kba_grid(p: int) -> Tuple[int, int]:
    """Factor ``p`` into a near-square (py, pz) process grid."""
    best = (p, 1)
    a = int(p ** 0.5)
    while a >= 1:
        if p % a == 0:
            best = (p // a, a)
            break
        a -= 1
    return best


def sweep_block(psi_y: np.ndarray, psi_z: np.ndarray,
                source: np.ndarray, mu: np.ndarray, eta: float,
                xi: float, weights: np.ndarray, sigma: float,
                d: Tuple[float, float, float]) -> tuple:
    """3-D diamond-difference sweep of one local block, all x planes.

    All arrays are in *sweep orientation* (the caller flips axes so the
    sweep always proceeds toward +x, +y, +z).

    Parameters
    ----------
    psi_y / psi_z:
        Incoming boundary fluxes: shapes (n_ang, nx, nz) and
        (n_ang, nx, ny).
    source:
        Local source, shape (nx, ny, nz).
    mu / eta / xi:
        |direction cosines| per angle (mu) and the fixed y/z cosines.
    weights:
        Quadrature weights.
    sigma, d:
        Cross-section and cell widths (dx, dy, dz).

    Returns
    -------
    (phi, psi_y_out, psi_z_out): the weighted scalar-flux contribution
    (nx, ny, nz) and outgoing boundary planes (same shapes as inputs).
    """
    n_ang = mu.shape[0]
    nx, ny, nz = source.shape
    dx, dy, dz = d
    cx = (mu / dx)[:, None]                    # (n_ang, 1) per diagonal
    cy = eta / dy
    cz = xi / dz
    denom_const = sigma + 2.0 * cy + 2.0 * cz

    phi = np.zeros_like(source)
    psi_x = np.zeros((n_ang, ny, nz))          # x=0 vacuum boundary
    psi_y = psi_y.copy()
    psi_z = psi_z.copy()
    w = weights[:, None]

    # precompute the in-plane diagonals
    diags: List[Tuple[np.ndarray, np.ndarray]] = []
    for dd in range(ny + nz - 1):
        ys = np.arange(max(0, dd - nz + 1), min(ny, dd + 1))
        diags.append((ys, dd - ys))

    for i in range(nx):
        q = source[i]
        psi_y_row = psi_y[:, i, :]             # (n_ang, nz): ghosts at y=0
        psi_z_row = psi_z[:, i, :]             # (n_ang, ny): ghosts at z=0
        psi_y_out = np.empty((n_ang, ny, nz))
        psi_z_out = np.empty((n_ang, ny, nz))
        for ys, zs in diags:
            p_x = psi_x[:, ys, zs]
            p_y = np.where((ys > 0)[None, :],
                           psi_y_out[:, np.maximum(ys - 1, 0), zs],
                           psi_y_row[:, zs])
            p_z = np.where((zs > 0)[None, :],
                           psi_z_out[:, ys, np.maximum(zs - 1, 0)],
                           psi_z_row[:, ys])
            c = ((q[ys, zs][None, :] + 2.0 * cx * p_x
                  + 2.0 * cy * p_y + 2.0 * cz * p_z)
                 / (denom_const + 2.0 * cx))
            psi_x[:, ys, zs] = 2.0 * c - p_x
            psi_y_out[:, ys, zs] = 2.0 * c - p_y
            psi_z_out[:, ys, zs] = 2.0 * c - p_z
            phi[i, ys, zs] += (w * c).sum(axis=0)
        psi_y[:, i, :] = psi_y_out[:, -1, :]   # outgoing +y face, plane i
        psi_z[:, i, :] = psi_z_out[:, :, -1]   # outgoing +z face, plane i
    return phi, psi_y, psi_z


def _orient(a: np.ndarray, sx: int, sy: int, sz: int) -> np.ndarray:
    """Flip a (nx, ny, nz) field into sweep orientation (and back —
    flipping is its own inverse)."""
    if sx < 0:
        a = a[::-1]
    if sy < 0:
        a = a[:, ::-1]
    if sz < 0:
        a = a[:, :, ::-1]
    return np.ascontiguousarray(a)


def serial_sweep_kba(source: np.ndarray, quad: np.ndarray,
                     sigma: float, d=(0.1, 0.1, 0.1)) -> np.ndarray:
    """Reference: all eight octants over the full mesh."""
    nx, ny, nz = source.shape
    mu, w = quad[:, 0], quad[:, 1]
    phi = np.zeros_like(source)
    for sx, sy, sz in OCTANTS:
        src = _orient(source, sx, sy, sz)
        psi_y = np.zeros((mu.size, nx, nz))
        psi_z = np.zeros((mu.size, nx, ny))
        contrib, _, _ = sweep_block(psi_y, psi_z, src, mu, 0.5, 0.5,
                                    w, sigma, d)
        phi += _orient(contrib, sx, sy, sz)
    return phi


def _f2w(a: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(a, np.float64).view(np.uint64).ravel()


def _w2f(wd: np.ndarray, shape) -> np.ndarray:
    return wd.view(np.float64).reshape(shape)


class _KbaRank:
    """This rank's geometry for one octant."""

    def __init__(self, rank: int, grid: Tuple[int, int],
                 sy: int, sz: int) -> None:
        py, pz = grid
        self.j, self.k = rank // pz, rank % pz
        # logical sweep coordinates (the sweep always walks +y, +z over
        # the *oriented* process grid)
        jj = self.j if sy > 0 else py - 1 - self.j
        kk = self.k if sz > 0 else pz - 1 - self.k
        self.first_y = jj == 0
        self.first_z = kk == 0
        self.last_y = jj == py - 1
        self.last_z = kk == pz - 1
        dj = 1 if sy > 0 else -1
        dk = 1 if sz > 0 else -1
        self.up_y = None if self.first_y else (self.j - dj) * pz + self.k
        self.dn_y = None if self.last_y else (self.j + dj) * pz + self.k
        self.up_z = None if self.first_z else self.j * pz + (self.k - dk)
        self.dn_z = None if self.last_z else self.j * pz + (self.k + dk)


def _sweep_cost(ctx: RankContext, cells: int, n_ang: int) -> Generator:
    # ~18 flops per cell-angle (3-D diamond difference)
    yield from ctx.compute(flops=18.0 * cells * n_ang, dispatches=1)


def _kba_program(ctx: RankContext, source: np.ndarray, quad: np.ndarray,
                 sigma: float, d, grid: Tuple[int, int], chunk: int,
                 fabric: str) -> Generator:
    py, pz = grid
    nx, ny_l, nz_l = source.shape
    mu_all, w_all = quad[:, 0], quad[:, 1]
    n_angles = quad.shape[0]
    chunk_ids = list(range(0, n_angles, chunk))
    phi = np.zeros_like(source)

    yield from ctx.barrier()
    ctx.mark("t0")
    for sx, sy, sz in OCTANTS:
        geo = _KbaRank(ctx.rank, grid, sy, sz)
        src = _orient(source, sx, sy, sz)
        sizes_y = [mu_all[c0:c0 + chunk].size * nx * nz_l
                   for c0 in chunk_ids]
        sizes_z = [mu_all[c0:c0 + chunk].size * nx * ny_l
                   for c0 in chunk_ids]
        if fabric == "dv":
            from repro.apps.pipeline import CounterPipe
            stride_y = 2 * max(sizes_y)
            pipe_y = CounterPipe(ctx, geo.up_y, geo.dn_y, sizes_y,
                                 ctr_base=_CTR_PIPE_Y, region_base=0)
            pipe_z = CounterPipe(ctx, geo.up_z, geo.dn_z, sizes_z,
                                 ctr_base=_CTR_PIPE_Z,
                                 region_base=stride_y)
            yield from pipe_y.setup()
            yield from pipe_z.setup()
        yield from ctx.barrier()   # presets/tags quiesce per octant
        for i, c0 in enumerate(chunk_ids):
            mu = mu_all[c0:c0 + chunk]
            w = w_all[c0:c0 + chunk]
            n_ang = mu.size
            # incoming boundary planes
            if geo.first_y:
                psi_y = np.zeros((n_ang, nx, nz_l))
            elif fabric == "dv":
                wrd = yield from pipe_y.recv(i)
                psi_y = _w2f(wrd, (n_ang, nx, nz_l))
            else:
                data, _, _ = yield from ctx.mpi.recv(
                    geo.up_y, tag=3000 + i)
                psi_y = data
            if geo.first_z:
                psi_z = np.zeros((n_ang, nx, ny_l))
            elif fabric == "dv":
                wrd = yield from pipe_z.recv(i)
                psi_z = _w2f(wrd, (n_ang, nx, ny_l))
            else:
                data, _, _ = yield from ctx.mpi.recv(
                    geo.up_z, tag=4000 + i)
                psi_z = data
            contrib, psi_y_out, psi_z_out = sweep_block(
                psi_y, psi_z, src, mu, 0.5, 0.5, w, sigma, d)
            phi += _orient(contrib, sx, sy, sz)
            yield from _sweep_cost(ctx, src.size, n_ang)
            # outgoing boundary planes
            if not geo.last_y:
                if fabric == "dv":
                    yield from pipe_y.send(i, _f2w(psi_y_out))
                else:
                    yield from ctx.mpi.send(geo.dn_y, psi_y_out,
                                            tag=3000 + i)
            if not geo.last_z:
                if fabric == "dv":
                    yield from pipe_z.send(i, _f2w(psi_z_out))
                else:
                    yield from ctx.mpi.send(geo.dn_z, psi_z_out,
                                            tag=4000 + i)
        if fabric == "dv":
            yield from pipe_y.finish()
            yield from pipe_z.finish()
        yield from ctx.barrier()
    elapsed = ctx.since("t0")
    return {"elapsed": elapsed, "phi": phi}


def run_snap_kba(spec: ClusterSpec, fabric: str, *, nx: int = 8,
                 ny: int = 8, nz: int = 8, n_angles: int = 8,
                 chunk: int = 2, sigma: float = 1.0,
                 validate: bool = False) -> Dict[str, object]:
    """Run the KBA-decomposed SNAP proxy on one fabric.

    The global mesh is ``nx x ny x nz`` over a ``py x pz`` process grid
    (near-square factorisation of ``n_nodes``); ``ny``/``nz`` must be
    divisible by the grid.
    """
    P = spec.n_nodes
    grid = kba_grid(P)
    py, pz = grid
    if ny % py or nz % pz:
        raise ValueError(f"mesh {ny}x{nz} not divisible by process "
                         f"grid {grid}")
    rng = np.random.default_rng(spec.seed)
    source = rng.random((nx, ny, nz))
    from repro.apps.snap import angle_quadrature
    quad = angle_quadrature(n_angles)
    d = (0.1, 0.1, 0.1)
    by, bz = ny // py, nz // pz

    def program(ctx):
        j, k = ctx.rank // pz, ctx.rank % pz
        local = source[:, j * by:(j + 1) * by,
                       k * bz:(k + 1) * bz].copy()
        return (yield from _kba_program(ctx, local, quad, sigma, d,
                                        grid, chunk, fabric))

    res = run_spmd(spec, program, fabric)
    elapsed = max(v["elapsed"] for v in res.values)
    out: Dict[str, object] = {
        "fabric": fabric, "n_nodes": P, "grid": grid,
        "mesh": (nx, ny, nz), "elapsed_s": elapsed,
        "cell_angle_sweeps_per_s":
            8 * nx * ny * nz * n_angles / elapsed,
    }
    if validate:
        phi = np.zeros((nx, ny, nz))
        for rank, v in enumerate(res.values):
            j, k = rank // pz, rank % pz
            phi[:, j * by:(j + 1) * by, k * bz:(k + 1) * bz] = v["phi"]
        ref = serial_sweep_kba(source, quad, sigma, d)
        out["max_error"] = float(np.max(np.abs(phi - ref)))
        out["valid"] = bool(np.allclose(phi, ref, atol=1e-11))
    return out
