"""Prototype applications (paper §VII, Fig. 9).

Three iterative PDE solvers with high communication-to-computation cost,
each implemented for both fabrics:

* :mod:`repro.apps.snap` — discrete-ordinates transport sweep proxy
  ("best-effort" Data Vortex port: same structure, DV primitives);
* :mod:`repro.apps.vorticity` — 2-D inviscid incompressible flow,
  pseudo-spectral (aggressively restructured for the Data Vortex: the
  five per-step FFTs share two batched transposes through VIC memory);
* :mod:`repro.apps.heat` — 3-D heat equation with domain decomposition
  and six-neighbour halo exchange (restructured: one aggregated DV
  transfer per step instead of six MPI messages).
"""

from repro.apps.cg import run_cg
from repro.apps.heat import run_heat
from repro.apps.snap import run_snap
from repro.apps.snap_kba import run_snap_kba
from repro.apps.vorticity import run_vorticity

__all__ = ["run_cg", "run_heat", "run_snap", "run_snap_kba",
           "run_vorticity"]
