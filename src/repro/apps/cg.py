"""Distributed conjugate gradients for the implicit heat operator.

Explicit stepping (``repro.apps.heat``) is halo-bound; implicit stepping
``(I - r L) u' = u`` is solved with CG, whose per-iteration pattern —
one halo exchange for the operator plus *two global dot products* — is
the communication profile of most Krylov solvers, and exactly the
latency-bound collective traffic where a flat, sub-microsecond barrier/
reduction fabric pays.

* **MPI version** — isend/irecv halo faces, then ``allgather`` of the
  per-rank partial dots (summed in rank order, keeping the arithmetic
  bit-identical to the serial reference);
* **Data Vortex version** — the heat app's idioms: one aggregated
  face transfer under parity counters, and dot products by all-to-all
  single-word DV-memory writes.

Validation: the solution satisfies the operator equation to the CG
tolerance, matches a serial CG with identical arithmetic, and matches a
dense ``numpy.linalg.solve`` of the assembled operator on small grids.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Tuple

import numpy as np

from repro.apps.heat import (_coords, _faces_out, _local_block,
                             _neighbours, process_grid, _f2w, _w2f)
from repro.core.cluster import ClusterSpec, run_spmd
from repro.core.context import RankContext

_CTR_FACE_EVEN = 24
_CTR_FACE_ODD = 25
_CTR_DOT_EVEN = 26
_CTR_DOT_ODD = 27


def apply_operator(u: np.ndarray, halos: List[np.ndarray],
                   r: float) -> np.ndarray:
    """``(I - r*L) u`` on a local block given the six neighbour faces."""
    acc = (1.0 + 6.0 * r) * u
    acc -= r * np.concatenate([halos[0][None], u[:-1]], axis=0)
    acc -= r * np.concatenate([u[1:], halos[1][None]], axis=0)
    acc -= r * np.concatenate([halos[2][:, None], u[:, :-1]], axis=1)
    acc -= r * np.concatenate([u[:, 1:], halos[3][:, None]], axis=1)
    acc -= r * np.concatenate([halos[4][:, :, None], u[:, :, :-1]],
                              axis=2)
    acc -= r * np.concatenate([u[:, :, 1:], halos[5][:, :, None]],
                              axis=2)
    return acc


def apply_operator_global(u: np.ndarray, r: float) -> np.ndarray:
    """Serial periodic ``(I - r*L) u`` (reference)."""
    lap = (np.roll(u, 1, 0) + np.roll(u, -1, 0)
           + np.roll(u, 1, 1) + np.roll(u, -1, 1)
           + np.roll(u, 1, 2) + np.roll(u, -1, 2) - 6.0 * u)
    return u - r * lap


def serial_cg(b: np.ndarray, r: float, tol: float, max_iters: int,
              grid: Tuple[int, int, int]) -> Tuple[np.ndarray, int]:
    """Serial CG whose dot products are summed per-block in rank order,
    so the distributed solvers match it bit for bit."""
    n = b.shape[0]
    px, py, pz = grid
    bx, by, bz = n // px, n // py, n // pz

    def blocks(v):
        out = []
        for rx in range(px):
            for ry in range(py):
                for rz in range(pz):
                    out.append(v[rx * bx:(rx + 1) * bx,
                                 ry * by:(ry + 1) * by,
                                 rz * bz:(rz + 1) * bz])
        return out

    def dot(u, v):
        return float(sum(np.float64((a * c).sum())
                         for a, c in zip(blocks(u), blocks(v))))

    x = np.zeros_like(b)
    res = b.copy()
    p = res.copy()
    rs = dot(res, res)
    it = 0
    while it < max_iters and np.sqrt(rs) > tol:
        ap = apply_operator_global(p, r)
        alpha = rs / dot(p, ap)
        x += alpha * p
        res -= alpha * ap
        rs_new = dot(res, res)
        p = res + (rs_new / rs) * p
        rs = rs_new
        it += 1
    return x, it


def _cg_program(ctx: RankContext, b_local: np.ndarray, grid, r: float,
                tol: float, max_iters: int, fabric: str) -> Generator:
    P = ctx.size
    nbrs = _neighbours(ctx.rank, grid)
    opp = [1, 0, 3, 2, 5, 4]
    sides = [i for i in range(6) if nbrs[i] != ctx.rank]
    face_words = [int(np.prod(f.shape)) for f in _faces_out(b_local)]
    offs = np.concatenate([[0], np.cumsum(face_words)])
    stride = int(offs[-1])
    expected = sum(face_words[i] for i in sides)
    dot_base = 2 * stride
    step = {"n": 0}   # parity counter across halo exchanges and dots

    if fabric == "dv":
        api = ctx.dv
        yield from api.set_counter(_CTR_FACE_EVEN, expected)
        yield from api.set_counter(_CTR_FACE_ODD, expected)
        if P > 1:
            yield from api.set_counter(_CTR_DOT_EVEN, P - 1)
            yield from api.set_counter(_CTR_DOT_ODD, P - 1)

    def halo_exchange(u):
        s = step["n"]
        step["n"] += 1
        faces = _faces_out(u)
        if fabric == "dv":
            api = ctx.dv
            parity = s % 2
            ctr = _CTR_FACE_EVEN if parity == 0 else _CTR_FACE_ODD
            base = parity * stride
            if sides:
                dests = np.concatenate([
                    np.full(face_words[i], nbrs[i], np.int64)
                    for i in sides])
                addrs = np.concatenate([
                    base + offs[opp[i]] + np.arange(face_words[i])
                    for i in sides])
                values = np.concatenate([_f2w(faces[i]) for i in sides])
                yield from api.send_batch(dests, addrs, values,
                                          counter=ctr,
                                          cached_headers=True,
                                          via="dma")
            yield from api.wait_counter_zero(ctr)
            yield from api.drain_overlapped(max(expected, 1))
            words = api.vic.memory.read_range(base, stride)
            yield from api.set_counter(ctr, expected)
            return [_w2f(words[offs[i]:offs[i + 1]], faces[i].shape)
                    if nbrs[i] != ctx.rank else faces[opp[i]]
                    for i in range(6)]
        mpi = ctx.mpi
        tag0 = 5000 + 8 * s
        sends = [mpi.isend(nbrs[i], faces[i], tag=tag0 + i)
                 for i in sides]
        recvs = {i: mpi.irecv(nbrs[i], tag=tag0 + opp[i])
                 for i in sides}
        halos = []
        for i in range(6):
            if i in recvs:
                data, _, _ = yield recvs[i]
                halos.append(data)
            else:
                halos.append(faces[opp[i]])
        for ev in sends:
            yield ev
        return halos

    def global_dot(u, v):
        part = float(np.float64((u * v).sum()))
        yield from ctx.compute(flops=2.0 * u.size, dispatches=1)
        if P == 1:
            return part
        s = step["n"]
        step["n"] += 1
        if fabric == "dv":
            api = ctx.dv
            parity = s % 2
            ctr = _CTR_DOT_EVEN if parity == 0 else _CTR_DOT_ODD
            base = dot_base + parity * P
            word = np.float64(part).view(np.uint64)
            others = np.array([d for d in range(P) if d != ctx.rank])
            yield from api.send_batch(
                others, np.full(others.size, base + ctx.rank),
                np.full(others.size, word), counter=ctr,
                cached_headers=True, via="dma")
            yield from api.wait_counter_zero(ctr)
            yield from api.set_counter(ctr, P - 1)
            slot = api.vic.memory.read_range(base, P)
            slot[ctx.rank] = word
            # rank-ordered summation, matching the serial reference
            return float(np.sum(slot.view(np.float64)))
        parts = yield from ctx.mpi.allgather(part)
        return float(np.sum(np.array(parts, np.float64)))

    yield from ctx.barrier()
    ctx.mark("t0")
    x = np.zeros_like(b_local)
    res = b_local.copy()
    p = res.copy()
    rs = yield from global_dot(res, res)
    it = 0
    while it < max_iters and np.sqrt(rs) > tol:
        halos = yield from halo_exchange(p)
        ap = apply_operator(p, halos, r)
        yield from ctx.compute(flops=14.0 * p.size,
                               stream_bytes=8.0 * p.size * 8,
                               dispatches=7)
        pap = yield from global_dot(p, ap)
        alpha = rs / pap
        x += alpha * p
        res -= alpha * ap
        yield from ctx.compute(flops=4.0 * p.size, dispatches=2)
        rs_new = yield from global_dot(res, res)
        p = res + (rs_new / rs) * p
        yield from ctx.compute(flops=2.0 * p.size, dispatches=1)
        rs = rs_new
        it += 1
    elapsed = ctx.since("t0")
    yield from ctx.barrier()
    return {"elapsed": elapsed, "x": x, "iters": it,
            "rnorm": float(np.sqrt(rs))}


def run_cg(spec: ClusterSpec, fabric: str, *, n: int = 16,
           r: float = 1.0, tol: float = 1e-8, max_iters: int = 200,
           validate: bool = False) -> Dict[str, object]:
    """Solve ``(I - r*L) x = b`` with distributed CG on one fabric."""
    grid = process_grid(spec.n_nodes)
    if any(n % g for g in grid):
        raise ValueError(f"n={n} not divisible by process grid {grid}")
    rng = np.random.default_rng(spec.seed)
    b = rng.random((n, n, n))

    def program(ctx):
        local = _local_block(b, ctx.rank, grid, n)
        return (yield from _cg_program(ctx, local, grid, r, tol,
                                       max_iters, fabric))

    res = run_spmd(spec, program, fabric)
    elapsed = max(v["elapsed"] for v in res.values)
    iters = res.values[0]["iters"]
    out: Dict[str, object] = {
        "fabric": fabric, "n_nodes": spec.n_nodes, "n": n,
        "iterations": iters, "elapsed_s": elapsed,
        "residual_norm": res.values[0]["rnorm"],
        "converged": bool(res.values[0]["rnorm"] <= tol),
    }
    if validate:
        px, py, pz = grid
        bx, by, bz = n // px, n // py, n // pz
        x = np.empty_like(b)
        for rank, v in enumerate(res.values):
            cx, cy, cz = _coords(rank, grid)
            x[cx * bx:(cx + 1) * bx, cy * by:(cy + 1) * by,
              cz * bz:(cz + 1) * bz] = v["x"]
        # 1. operator equation satisfied to tolerance
        resid = b - apply_operator_global(x, r)
        out["op_residual"] = float(np.linalg.norm(resid))
        # 2. bitwise agreement with the rank-ordered serial CG
        ref, ref_iters = serial_cg(b, r, tol, max_iters, grid)
        out["max_error_vs_serial"] = float(np.max(np.abs(x - ref)))
        out["valid"] = bool(
            out["op_residual"] <= 10 * tol
            and ref_iters == iters
            and np.allclose(x, ref, atol=1e-12, rtol=0))
    return out
