"""Reusable Data Vortex point-to-point pipeline protocol.

Wavefront sweeps (SNAP-style) move an ordered stream of fixed-layout
messages from an upstream to a downstream rank.  On the Data Vortex the
idiomatic implementation uses

* a double-buffered DV-memory region (message parity picks the half);
* two *data* group counters in parity alternation, preset by the
  receiver before the stream starts and recycled after each consume;
* two *credit* counters flowing the other way: the sender may reuse a
  parity buffer only after the receiver freed it (a single decrement
  packet), so a fast producer can never overrun the two buffers;
* fire-and-forget DMA sends reaped two messages later, letting the
  outgoing DMA overlap the next message's compute.

:class:`CounterPipe` packages that protocol once so every pipelined
application (the 1-D sweep, the 2-D KBA sweep) uses identical, tested
machinery.  Each pipe consumes four group counters and
``2 * max(words)`` words of DV memory.
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

import numpy as np

from repro.core.context import RankContext


class CounterPipe:
    """One directed edge of a sweep pipeline on the Data Vortex.

    Parameters
    ----------
    ctx:
        Rank context (must be a DV run).
    upstream / downstream:
        Peer ranks, or ``None`` at the ends of the pipeline.
    sizes:
        Word count of every message, in order (the whole stream's
        schedule is known in advance, as in a sweep).
    ctr_base:
        First of four consecutive group-counter indices owned by this
        pipe (data even/odd, credit even/odd).
    region_base:
        First word of the pipe's DV-memory double buffer at the
        *receiver*; the buffer spans ``2 * max(sizes)`` words.
    """

    def __init__(self, ctx: RankContext, upstream: Optional[int],
                 downstream: Optional[int], sizes: Sequence[int],
                 ctr_base: int, region_base: int) -> None:
        self.ctx = ctx
        self.api = ctx.dv
        self.upstream = upstream
        self.downstream = downstream
        self.sizes = list(sizes)
        if any(s < 1 for s in self.sizes):
            raise ValueError("message sizes must be positive")
        self.ctr_data = (ctr_base, ctr_base + 1)
        self.ctr_credit = (ctr_base + 2, ctr_base + 3)
        self.region_base = region_base
        self.stride = max(self.sizes) if self.sizes else 0
        self._pending = [None, None]   # in-flight send per parity

    # -- setup ----------------------------------------------------------------
    def setup(self) -> Generator:
        """Preset the first two data counters (receiver side) — call on
        every rank *before* a barrier, so no packet can race a preset."""
        if self.upstream is not None:
            for i, size in enumerate(self.sizes[:2]):
                yield from self.api.set_counter(self.ctr_data[i % 2],
                                                size)

    # -- receiving -------------------------------------------------------------
    def recv(self, i: int) -> Generator:
        """Receive message ``i``; returns its words.

        Recycles the parity data counter for message ``i + 2`` and
        grants the upstream a credit once the buffer is free.
        """
        if self.upstream is None:
            raise RuntimeError("recv on a pipe with no upstream")
        api = self.api
        parity = i % 2
        yield from api.wait_counter_zero(self.ctr_data[parity])
        words = self.sizes[i]
        yield from api.drain_overlapped(words)
        data = api.vic.memory.read_range(
            self.region_base + parity * self.stride, words)
        if i + 2 < len(self.sizes):
            yield from api.set_counter(self.ctr_data[parity],
                                       self.sizes[i + 2])
            # buffer free again: one decrement packet to the upstream
            yield from api.send_counter_dec(self.upstream,
                                            self.ctr_credit[parity])
        return data

    # -- sending --------------------------------------------------------------
    def send(self, i: int, words: np.ndarray) -> Generator:
        """Send message ``i`` downstream (fire-and-forget DMA)."""
        if self.downstream is None:
            raise RuntimeError("send on a pipe with no downstream")
        api = self.api
        parity = i % 2
        words = np.ascontiguousarray(words, np.uint64).ravel()
        if words.size != self.sizes[i]:
            raise ValueError(f"message {i} has {words.size} words, "
                             f"schedule says {self.sizes[i]}")
        if i >= 2:
            # wait for the downstream to free this parity buffer
            yield from api.wait_counter_zero(self.ctr_credit[parity])
            if self._pending[parity] is not None:
                yield self._pending[parity]
        if i + 2 < len(self.sizes):
            yield from api.set_counter(self.ctr_credit[parity], 1)
        addrs = (self.region_base + parity * self.stride
                 + np.arange(words.size))
        self._pending[parity] = self.ctx.engine.process(
            api.send_words(self.downstream, addrs, words,
                           counter=self.ctr_data[parity],
                           cached_headers=True, via="dma"))

    def finish(self) -> Generator:
        """Reap any in-flight sends (call before the closing barrier)."""
        for ev in self._pending:
            if ev is not None:
                yield ev
        self._pending = [None, None]
