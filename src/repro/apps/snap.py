"""SNAP-style discrete-ordinates transport sweep proxy (paper §VII).

SNAP mimics the computational pattern of PARTISN: an iterative sweep of
a spatial mesh along every direction of an angular quadrature.  This
proxy keeps the communication skeleton that matters for the network
comparison — pipelined wavefront sweeps with a boundary-plane message
per (direction, angle-chunk, pipeline stage) — and a diamond-difference
update as the per-cell work.

The mesh is ``nx x ny x nz``, decomposed in 1-D slabs along y.  For each
sweep direction (+y then -y) and each chunk of angles, a rank receives
the upstream boundary plane (nx*nz values per angle in the chunk),
sweeps its slab plane by plane, and forwards the downstream boundary.
Chunking the angles pipelines the sweep: rank r works on chunk c while
rank r+1 works on chunk c-1.

* **MPI version**: plane messages via ``send``/``recv`` — mid-sized,
  perfectly predictable, classic HPC traffic that InfiniBand likes.
* **Data Vortex version** ("best-effort port", as the paper describes):
  the same structure with receives replaced by preset group counters and
  sends by DMA word streams into the downstream VIC's DV memory,
  double-buffered by chunk parity.  No restructuring — which is why the
  measured gain is modest (Fig. 9 reports 1.19x).

Validation: the distributed sweep result equals a serial sweep of the
same mesh exactly, and the scalar flux is physically non-negative.
"""

from __future__ import annotations

from typing import Dict, Generator

import numpy as np

from repro.core.cluster import ClusterSpec, run_spmd
from repro.core.context import RankContext

_CTR_EVEN = 55
_CTR_ODD = 56
_CTR_CREDIT_EVEN = 57
_CTR_CREDIT_ODD = 58


def angle_quadrature(n_angles: int) -> np.ndarray:
    """Per-angle (mu, weight) pairs: a simple symmetric level set."""
    mu = np.linspace(0.1, 0.9, n_angles)
    w = np.full(n_angles, 1.0 / n_angles)
    return np.stack([mu, w], axis=1)


def sweep_slab(psi_in: np.ndarray, source: np.ndarray, mu: np.ndarray,
               weights: np.ndarray, sigma: float, dy: float,
               forward: bool) -> tuple:
    """Diamond-difference sweep of one y-slab for a chunk of angles.

    Parameters
    ----------
    psi_in:
        Incoming angular flux planes, shape (n_angles, nx, nz).
    source:
        Isotropic source for the slab, shape (ny_local, nx, nz).
    mu, weights:
        Direction cosines and quadrature weights of the angle chunk.
    sigma, dy:
        Total cross-section and cell width.
    forward:
        Sweep toward +y (True) or -y.

    Returns
    -------
    (psi_out, phi): outgoing planes (n_angles, nx, nz) and the slab's
    weighted scalar-flux contribution (ny_local, nx, nz).  Weighted sums
    compose across angle chunks, so chunked and monolithic sweeps agree.
    """
    ny = source.shape[0]
    psi = psi_in.copy()
    phi = np.zeros_like(source)
    planes = range(ny) if forward else range(ny - 1, -1, -1)
    c = mu[:, None, None] / dy
    w = weights[:, None, None]
    for j in planes:
        # diamond difference: psi_out = (q + 2c*psi_in) / (sigma + 2c)
        psi = (source[j][None, :, :] + 2.0 * c * psi) / (sigma + 2.0 * c)
        phi[j] += (w * psi).sum(axis=0)
    return psi, phi


def serial_sweep(source: np.ndarray, quad: np.ndarray, sigma: float,
                 dy: float) -> np.ndarray:
    """Full-mesh reference sweep (both directions, all angles)."""
    ny, nx, nz = source.shape
    phi = np.zeros_like(source)
    for forward in (True, False):
        mu, w = quad[:, 0], quad[:, 1]
        psi_in = np.zeros((quad.shape[0], nx, nz))
        _, contrib = sweep_slab(psi_in, source, mu, w, sigma, dy, forward)
        phi += contrib
    return phi


def _f2w(a: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(a, np.float64).view(np.uint64).ravel()


def _w2f(w: np.ndarray, shape) -> np.ndarray:
    return w.view(np.float64).reshape(shape)


def _sweep_cost(ctx: RankContext, cells: int, n_ang: int) -> Generator:
    # ~12 flops per cell-angle for the diamond-difference update
    yield from ctx.compute(flops=12.0 * cells * n_ang, dispatches=1)


def _snap_mpi(ctx: RankContext, source: np.ndarray, quad: np.ndarray,
              sigma: float, dy: float, chunk: int) -> Generator:
    mpi = ctx.mpi
    P = ctx.size
    ny, nx, nz = source.shape
    phi = np.zeros_like(source)
    n_angles = quad.shape[0]

    yield from ctx.barrier()
    ctx.mark("t0")
    for forward in (True, False):
        upstream = ctx.rank - 1 if forward else ctx.rank + 1
        downstream = ctx.rank + 1 if forward else ctx.rank - 1
        first = (ctx.rank == 0) if forward else (ctx.rank == P - 1)
        last = (ctx.rank == P - 1) if forward else (ctx.rank == 0)
        for c0 in range(0, n_angles, chunk):
            mu = quad[c0:c0 + chunk, 0]
            w = quad[c0:c0 + chunk, 1]
            n_ang = mu.shape[0]
            if first:
                psi_in = np.zeros((n_ang, nx, nz))
            else:
                psi_in, _, _ = yield from mpi.recv(
                    upstream, tag=2000 + c0 + (0 if forward else 1))
            psi_out, contrib = sweep_slab(psi_in, source, mu, w, sigma,
                                          dy, forward)
            phi += contrib
            yield from _sweep_cost(ctx, source.size, n_ang)
            if not last:
                yield from mpi.send(
                    downstream, psi_out,
                    tag=2000 + c0 + (0 if forward else 1))
    elapsed = ctx.since("t0")
    return {"elapsed": elapsed, "phi": phi}


def _snap_dv(ctx: RankContext, source: np.ndarray, quad: np.ndarray,
             sigma: float, dy: float, chunk: int) -> Generator:
    from repro.apps.pipeline import CounterPipe

    api = ctx.dv
    P = ctx.size
    ny, nx, nz = source.shape
    phi = np.zeros_like(source)
    n_angles = quad.shape[0]
    chunk_ids = list(range(0, n_angles, chunk))
    sizes = [quad[c0:c0 + chunk].shape[0] * nx * nz for c0 in chunk_ids]

    yield from ctx.barrier()
    ctx.mark("t0")
    for forward in (True, False):
        upstream = ctx.rank - 1 if forward else ctx.rank + 1
        downstream = ctx.rank + 1 if forward else ctx.rank - 1
        first = (ctx.rank == 0) if forward else (ctx.rank == P - 1)
        last = (ctx.rank == P - 1) if forward else (ctx.rank == 0)
        pipe = CounterPipe(ctx,
                           upstream=None if first else upstream,
                           downstream=None if last else downstream,
                           sizes=sizes, ctr_base=_CTR_EVEN,
                           region_base=0)
        yield from pipe.setup()
        yield from ctx.barrier()   # presets before any packet flies
        for i, c0 in enumerate(chunk_ids):
            mu = quad[c0:c0 + chunk, 0]
            wts = quad[c0:c0 + chunk, 1]
            n_ang = mu.shape[0]
            if first:
                psi_in = np.zeros((n_ang, nx, nz))
            else:
                wrd = yield from pipe.recv(i)
                psi_in = _w2f(wrd, (n_ang, nx, nz))
            psi_out, contrib = sweep_slab(psi_in, source, mu, wts, sigma,
                                          dy, forward)
            phi += contrib
            yield from _sweep_cost(ctx, source.size, n_ang)
            if not last:
                yield from pipe.send(i, _f2w(psi_out))
        yield from pipe.finish()
        yield from ctx.barrier()   # directions do not overlap
    elapsed = ctx.since("t0")
    return {"elapsed": elapsed, "phi": phi}


def run_snap(spec: ClusterSpec, fabric: str, *, nx: int = 16,
             ny_per_rank: int = 8, nz: int = 16, n_angles: int = 32,
             chunk: int = 4, sigma: float = 1.0, dy: float = 0.1,
             validate: bool = False) -> Dict[str, object]:
    """Run the SNAP sweep proxy on one fabric.

    The global mesh is ``nx x (ny_per_rank * n_nodes) x nz`` with
    ``n_angles`` directions swept in chunks of ``chunk``.
    """
    P = spec.n_nodes
    ny = ny_per_rank * P
    rng = np.random.default_rng(spec.seed)
    source = rng.random((ny, nx, nz))
    quad = angle_quadrature(n_angles)

    def program(ctx):
        local = source[ctx.rank * ny_per_rank:
                       (ctx.rank + 1) * ny_per_rank].copy()
        if fabric == "dv":
            return (yield from _snap_dv(ctx, local, quad, sigma, dy,
                                        chunk))
        return (yield from _snap_mpi(ctx, local, quad, sigma, dy, chunk))

    res = run_spmd(spec, program, fabric)
    elapsed = max(v["elapsed"] for v in res.values)
    out: Dict[str, object] = {
        "fabric": fabric, "n_nodes": P, "elapsed_s": elapsed,
        "mesh": (nx, ny, nz), "n_angles": n_angles,
        "cell_angle_sweeps_per_s":
            2 * nx * ny * nz * n_angles / elapsed,
    }
    if validate:
        phi = np.concatenate([v["phi"] for v in res.values], axis=0)
        ref = serial_sweep(source, quad, sigma, dy)
        out["max_error"] = float(np.max(np.abs(phi - ref)))
        out["valid"] = bool(np.allclose(phi, ref, atol=1e-12)
                            and np.all(phi >= 0))
    return out


def run_snap_iterative(spec: ClusterSpec, fabric: str, *,
                       scattering: float = 0.5, tol: float = 1e-6,
                       max_iters: int = 50, nx: int = 8,
                       ny_per_rank: int = 4, nz: int = 8,
                       n_angles: int = 8, chunk: int = 2,
                       sigma: float = 1.0, dy: float = 0.1,
                       validate: bool = False) -> Dict[str, object]:
    """Source iteration: the outer loop real SN codes wrap around the
    sweep (paper SS VII: dimensions are "iteratively calculated").

    Solves ``phi = S[q + c * sigma * phi]`` by repeated sweeps, where
    ``S`` is the transport sweep and ``c`` the scattering ratio; each
    iteration ends with a global max-residual reduction.  Converges for
    ``c < 1`` (the spectral radius of source iteration).
    """
    if not 0 <= scattering < 1:
        raise ValueError("source iteration needs 0 <= c < 1")
    P = spec.n_nodes
    ny = ny_per_rank * P
    rng = np.random.default_rng(spec.seed)
    q_ext = rng.random((ny, nx, nz))
    quad = angle_quadrature(n_angles)

    def program(ctx):
        lo = ctx.rank * ny_per_rank
        q_local = q_ext[lo:lo + ny_per_rank].copy()
        phi = np.zeros_like(q_local)
        yield from ctx.barrier()
        ctx.mark("outer_t0")
        iters = 0
        residual = float("inf")
        while iters < max_iters and residual > tol:
            source = q_local + scattering * sigma * phi
            if fabric == "dv":
                out = yield from _snap_dv(ctx, source, quad, sigma, dy,
                                          chunk)
            else:
                out = yield from _snap_mpi(ctx, source, quad, sigma,
                                           dy, chunk)
            phi_new = out["phi"]
            local_res = float(np.max(np.abs(phi_new - phi)))
            yield from ctx.compute(stream_bytes=8.0 * phi.size)
            if fabric == "dv":
                # restructured residual reduction: all-to-all one-word
                # writes + local max (same idiom as the heat app)
                api = ctx.dv
                yield from api.set_counter(59, max(ctx.size - 1, 0))
                yield from ctx.barrier()
                word = np.float64(local_res).view(np.uint64)
                if ctx.size > 1:
                    others = np.array([d for d in range(ctx.size)
                                       if d != ctx.rank])
                    yield from api.send_batch(
                        others, np.full(others.size, 512 + ctx.rank),
                        np.full(others.size, word), counter=59,
                        cached_headers=True, via="dma")
                    yield from api.wait_counter_zero(59)
                    slot = api.vic.memory.read_range(512, ctx.size)
                    slot[ctx.rank] = word
                    residual = float(slot.max().view(np.float64))
                else:
                    residual = local_res
            else:
                residual = yield from ctx.mpi.allreduce(local_res, max)
            phi = phi_new
            iters += 1
        elapsed = ctx.since("outer_t0")
        return {"elapsed": elapsed, "phi": phi, "iters": iters,
                "residual": residual}

    res = run_spmd(spec, program, fabric)
    elapsed = max(v["elapsed"] for v in res.values)
    iters = res.values[0]["iters"]
    out: Dict[str, object] = {
        "fabric": fabric, "n_nodes": P, "elapsed_s": elapsed,
        "iterations": iters, "residual": res.values[0]["residual"],
        "converged": bool(res.values[0]["residual"] <= tol),
    }
    if validate:
        # serial fixed point of the same iteration
        phi_ref = np.zeros((ny, nx, nz))
        for _ in range(iters):
            phi_ref = serial_sweep(q_ext + scattering * sigma * phi_ref,
                                   quad, sigma, dy)
        phi = np.concatenate([v["phi"] for v in res.values], axis=0)
        out["max_error"] = float(np.max(np.abs(phi - phi_ref)))
        out["valid"] = bool(np.allclose(phi, phi_ref, atol=1e-10))
    return out
