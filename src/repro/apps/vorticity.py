"""2-D inviscid incompressible flow, pseudo-spectral (paper §VII).

Solves the vorticity form of Euler's equation on a periodic square,

    d(omega)/dt + u . grad(omega) = 0,      u = (psi_y, -psi_x),
    laplace(psi) = -omega,

with a Fourier pseudo-spectral method and 2/3-rule dealiasing.  Each
explicit step evaluates the nonlinear term from four inverse transforms
(u, v, omega_x, omega_y) and one forward transform of the product — "the
majority of the communication cost is from computing five two-dimensional
FFTs at each time step" (§VII).

Rows of the spectral fields are block-distributed.  A distributed 2-D FFT
is a local row transform, a global transpose, and a local column
transform.

* **MPI version**: every 2-D transform performs its own transpose and
  transposes back to keep the canonical layout — ten transposes per step
  (2 per FFT x 5 FFTs), the natural port of a serial spectral code.

* **Data Vortex version** (aggressively restructured, as the paper
  describes): the four inverse transforms are *batched through one
  transpose* into VIC memory, the pointwise product is computed in the
  transposed layout (pointwise work is layout-independent), and the
  single forward transform batches back — **two matrix transpositions
  per step** total, with transposed addressing folded into the packet
  addresses ("data reordering and redistribution integrated with normal
  data transfers").

Validation: the distributed stepper matches a serial implementation of
the identical scheme to round-off, and kinetic energy / enstrophy are
conserved over the run (inviscid invariants).
"""

from __future__ import annotations

from typing import Dict, Generator, Tuple

import numpy as np

from repro.core.cluster import ClusterSpec, run_spmd
from repro.core.context import RankContext
from repro.core.metrics import fft1d_flops
from repro.kernels.transpose import dv_transpose_batch, mpi_transpose

_CTR_VORT = 45


# ------------------------------------------------------------- spectral ---

def wavenumbers(n: int) -> np.ndarray:
    """FFT wavenumbers (integer, periodic box of length 2*pi)."""
    return np.fft.fftfreq(n, d=1.0 / n)


def dealias_mask(n: int) -> np.ndarray:
    """2/3-rule mask in one dimension."""
    k = np.abs(wavenumbers(n))
    return k <= n / 3.0


def initial_vorticity_hat(n: int, seed: int = 0) -> np.ndarray:
    """Kelvin-Helmholtz-flavoured initial condition: a perturbed double
    shear layer, returned in spectral space."""
    x = np.linspace(0, 2 * np.pi, n, endpoint=False)
    X, Y = np.meshgrid(x, x, indexing="ij")
    delta, eps = 0.5, 0.1
    omega = (np.exp(-((Y - np.pi / 2) / delta) ** 2)
             - np.exp(-((Y - 3 * np.pi / 2) / delta) ** 2))
    omega = omega * (1.0 + eps * np.cos(2 * X))
    return np.fft.fft2(omega)


def nonlinear_term_hat(omega_hat: np.ndarray,
                       viscosity: float = 0.0) -> np.ndarray:
    """Serial reference for -(u . grad omega) - nu*k^2*omega in
    spectral space (nu = 0 recovers the paper's inviscid Euler case)."""
    n = omega_hat.shape[0]
    kx = wavenumbers(n)[:, None]
    ky = wavenumbers(n)[None, :]
    k2_true = kx ** 2 + ky ** 2
    k2 = k2_true.copy()
    k2[0, 0] = 1.0
    psi_hat = omega_hat / k2
    u = np.real(np.fft.ifft2(1j * ky * psi_hat))
    v = np.real(np.fft.ifft2(-1j * kx * psi_hat))
    wx = np.real(np.fft.ifft2(1j * kx * omega_hat))
    wy = np.real(np.fft.ifft2(1j * ky * omega_hat))
    rhs_hat = -np.fft.fft2(u * wx + v * wy)
    mask = dealias_mask(n)
    rhs_hat = rhs_hat * mask[:, None] * mask[None, :]
    if viscosity:
        rhs_hat = rhs_hat - viscosity * k2_true * omega_hat
    return rhs_hat


def step_serial(omega_hat: np.ndarray, dt: float,
                viscosity: float = 0.0) -> np.ndarray:
    """Heun (RK2) step of the serial reference."""
    k1 = nonlinear_term_hat(omega_hat, viscosity)
    k2 = nonlinear_term_hat(omega_hat + dt * k1, viscosity)
    return omega_hat + 0.5 * dt * (k1 + k2)


def invariants(omega_hat: np.ndarray) -> Tuple[float, float]:
    """(kinetic energy, enstrophy) from the spectral vorticity."""
    n = omega_hat.shape[0]
    kx = wavenumbers(n)[:, None]
    ky = wavenumbers(n)[None, :]
    k2 = kx ** 2 + ky ** 2
    k2[0, 0] = 1.0
    w2 = np.abs(omega_hat) ** 2 / n ** 4
    energy = 0.5 * float(np.sum(w2 / k2))
    enstrophy = 0.5 * float(np.sum(w2))
    return energy, enstrophy


# --------------------------------------------------- distributed pieces ---

def _dist_rhs(ctx: RankContext, w_hat: np.ndarray, n: int,
              fabric: str, viscosity: float = 0.0) -> Generator:
    """Distributed evaluation of the dealiased nonlinear term.

    ``w_hat``: this rank's rows of the spectral vorticity (rows, n),
    fully transformed (both axes).  Returns rows of the spectral RHS.
    """
    P = ctx.size
    rows = n // P
    r0 = ctx.rank * rows
    kx_mine = wavenumbers(n)[r0:r0 + rows][:, None]
    ky = wavenumbers(n)[None, :]
    k2 = kx_mine ** 2 + ky ** 2
    k2[k2 == 0] = 1.0
    psi_hat = w_hat / k2
    fields_hat = [1j * ky * psi_hat,        # u_hat
                  -1j * kx_mine * psi_hat,  # v_hat
                  1j * kx_mine * w_hat,     # omega_x_hat
                  1j * ky * w_hat]          # omega_y_hat
    yield from ctx.compute(flops=10.0 * rows * n, dispatches=4)

    if fabric == "mpi":
        # a competently written MPI spectral code: one transpose per 2-D
        # transform, with the pointwise product evaluated in the
        # transposed layout — five alltoall transposes per evaluation
        # (the DV restructure below still halves that by batching)
        reals = []
        for fh in fields_hat:
            fh = np.fft.ifft(fh, axis=1)
            yield from ctx.compute(flops=rows * fft1d_flops(n))
            ft = yield from mpi_transpose(ctx, fh, n)
            ft = np.fft.ifft(ft, axis=1)
            yield from ctx.compute(flops=rows * fft1d_flops(n))
            reals.append(np.real(ft))
        u, v, wx, wy = reals
        prod = u * wx + v * wy          # pointwise: layout-free
        yield from ctx.compute(flops=3.0 * rows * n, dispatches=1)
        ph = np.fft.fft(prod, axis=1)
        yield from ctx.compute(flops=rows * fft1d_flops(n))
        back = yield from mpi_transpose(ctx, ph, n)
        rhs_hat = np.fft.fft(back, axis=1)
        yield from ctx.compute(flops=rows * fft1d_flops(n))
    else:
        # DV restructure: one batched transpose out, pointwise work in
        # the transposed layout, one batched transpose back
        half_done = []
        for fh in fields_hat:
            fh = np.fft.ifft(fh, axis=1)
            yield from ctx.compute(flops=rows * fft1d_flops(n))
            half_done.append(fh)
        transposed = yield from dv_transpose_batch(
            ctx, half_done, n, counter=_CTR_VORT)
        reals = []
        for ft in transposed:
            ft = np.fft.ifft(ft, axis=1)
            yield from ctx.compute(flops=rows * fft1d_flops(n))
            reals.append(np.real(ft))
        u, v, wx, wy = reals
        prod = u * wx + v * wy            # pointwise: layout-free
        yield from ctx.compute(flops=3.0 * rows * n, dispatches=1)
        ph = np.fft.fft(prod, axis=1)
        yield from ctx.compute(flops=rows * fft1d_flops(n))
        (back,) = yield from dv_transpose_batch(ctx, [ph], n,
                                                counter=_CTR_VORT)
        rhs_hat = np.fft.fft(back, axis=1)
        yield from ctx.compute(flops=rows * fft1d_flops(n))

    mask = dealias_mask(n)
    rhs_hat = -rhs_hat * mask[r0:r0 + rows][:, None] * mask[None, :]
    if viscosity:
        k2_true = kx_mine ** 2 + ky ** 2
        rhs_hat = rhs_hat - viscosity * k2_true * w_hat
        yield from ctx.compute(flops=4.0 * rows * n, dispatches=1)
    yield from ctx.compute(flops=2.0 * rows * n, dispatches=1)
    return rhs_hat


def _vorticity_program(ctx: RankContext, w0_hat: np.ndarray, n: int,
                       dt: float, steps: int, fabric: str,
                       viscosity: float = 0.0) -> Generator:
    P = ctx.size
    rows = n // P
    w_hat = w0_hat[ctx.rank * rows:(ctx.rank + 1) * rows].copy()

    yield from ctx.barrier()
    ctx.mark("t0")
    for _ in range(steps):
        k1 = yield from _dist_rhs(ctx, w_hat, n, fabric, viscosity)
        k2 = yield from _dist_rhs(ctx, w_hat + dt * k1, n, fabric,
                                  viscosity)
        w_hat = w_hat + 0.5 * dt * (k1 + k2)
        yield from ctx.compute(flops=6.0 * rows * n, dispatches=1)
    yield from ctx.barrier()
    elapsed = ctx.since("t0")
    return {"elapsed": elapsed, "w_hat": w_hat}


def run_vorticity(spec: ClusterSpec, fabric: str, *, n: int = 64,
                  dt: float = 1e-3, steps: int = 3,
                  viscosity: float = 0.0,
                  validate: bool = False) -> Dict[str, object]:
    """Run the incompressible-flow application on one fabric.

    ``n`` must be divisible by ``spec.n_nodes``.  ``viscosity > 0``
    turns the inviscid Euler solver of the paper into full 2-D
    Navier-Stokes (energy and enstrophy then decay instead of being
    conserved).
    """
    if viscosity < 0:
        raise ValueError("viscosity must be non-negative")
    P = spec.n_nodes
    if n % P:
        raise ValueError(f"grid {n} not divisible by {P} ranks")
    w0_hat = initial_vorticity_hat(n)

    def program(ctx):
        return (yield from _vorticity_program(ctx, w0_hat, n, dt, steps,
                                              fabric, viscosity))

    res = run_spmd(spec, program, fabric)
    elapsed = max(v["elapsed"] for v in res.values)
    w_final = np.concatenate([v["w_hat"] for v in res.values], axis=0)
    e0, z0 = invariants(w0_hat)
    e1, z1 = invariants(w_final)
    out: Dict[str, object] = {
        "fabric": fabric, "n_nodes": P, "n": n, "steps": steps,
        "elapsed_s": elapsed,
        "energy_drift": abs(e1 - e0) / e0,
        "enstrophy_drift": abs(z1 - z0) / z0,
    }
    if validate:
        ref = w0_hat.copy()
        for _ in range(steps):
            ref = step_serial(ref, dt, viscosity)
        err = np.max(np.abs(w_final - ref)) / np.max(np.abs(ref))
        out["max_rel_error"] = float(err)
        out["valid"] = bool(err < 1e-9)
    return out


def energy_spectrum(omega_hat: np.ndarray,
                    n_bins: int = None) -> Tuple[np.ndarray, np.ndarray]:
    """Shell-averaged kinetic-energy spectrum E(k).

    Standard turbulence diagnostic: bin |u_hat|^2 / 2 over wavenumber
    shells.  Useful for checking that the inviscid solver piles energy
    at large scales and enstrophy cascades to small ones.

    Returns ``(k, E)`` with ``sum(E) ~ total kinetic energy``.
    """
    n = omega_hat.shape[0]
    kx = wavenumbers(n)[:, None]
    ky = wavenumbers(n)[None, :]
    k2 = kx ** 2 + ky ** 2
    k2s = k2.copy()
    k2s[0, 0] = 1.0
    # E(k) dk: |u|^2/2 = |omega|^2 / (2 k^2)
    e_density = np.abs(omega_hat) ** 2 / n ** 4 / (2.0 * k2s)
    e_density[0, 0] = 0.0
    kmag = np.sqrt(k2)
    n_bins = n_bins or n // 2
    edges = np.arange(n_bins + 1, dtype=float) + 0.5
    which = np.digitize(kmag.ravel(), edges)
    E = np.zeros(n_bins)
    for b in range(n_bins):
        E[b] = e_density.ravel()[which == b + 1].sum()
    k = np.arange(1, n_bins + 1, dtype=float)
    return k, E
