"""Per-tenant views over the shared fabrics.

A tenant's kernels run in *local* rank space ``[0, n_ranks)`` and are
built from unmodified machinery — a plain
:class:`~repro.dv.api.DataVortexAPI` over a :class:`TenantVICView` and a
:class:`TenantNetworkView`, or a plain
:class:`~repro.ib.mpi.MPIRuntime` over a :class:`TenantFabricView`.
The views translate ranks by the partition's base offset at the network
boundary, enforce the partition's counter / DV-memory windows on every
payload that names one (raising
:class:`~repro.tenancy.spec.TenantIsolationError` on escape), and count
per-tenant ``tenant.net.*`` obs series alongside the cluster-wide ones.

Nothing else is wrapped: the real switch, the real VIC hardware and the
real fat tree serve every tenant, so co-scheduled tenants contend for
injection ports, switch load and spine uplinks exactly as one workload
would.  With a single tenant based at rank 0 and default (full-range)
windows, every translation is the identity and every check passes — the
solo path is bit-identical to the untenanted one, which the ``tenancy``
determinism axis pins on every golden figure.
"""

from __future__ import annotations

from collections import deque
from typing import Any, List, Optional, Sequence

import numpy as np

from repro.dv.vic import CounterDec, CounterSet, FifoPush, MemWrite, Query
from repro.obs import registry as obsreg
from repro.sim.events import CompletionEvent, Event
from repro.tenancy.spec import TenancyError, TenantIsolationError, TenantPartition

__all__ = [
    "TenantNetworkView",
    "TenantVICView",
    "TenantFabricView",
]


# ------------------------------------------------------------- DV guards ---

class _GuardedCounters:
    """Group-counter view that rejects indices outside the partition."""

    __slots__ = ("_real", "_allowed", "_tenant")

    def __init__(self, real, allowed: frozenset, tenant_id: str) -> None:
        self._real = real
        self._allowed = allowed
        self._tenant = tenant_id

    def _check(self, idx: int) -> None:
        if idx not in self._allowed:
            raise TenantIsolationError(
                f"tenant {self._tenant!r}: counter {idx} outside its "
                "partition window")

    def value(self, idx: int) -> int:
        self._check(idx)
        return self._real.value(idx)

    def set(self, idx: int, value: int) -> None:
        self._check(idx)
        self._real.set(idx, value)

    def decrement(self, idx: int, n: int = 1) -> None:
        self._check(idx)
        self._real.decrement(idx, n)

    def wait_zero(self, idx: int):
        self._check(idx)
        return self._real.wait_zero(idx)

    def zero_mask(self):
        return self._real.zero_mask()

    def user_counters(self):
        return self._real.user_counters()

    def __getattr__(self, name: str):
        return getattr(self._real, name)


class _GuardedMemory:
    """DV-memory view that rejects addresses outside the partition."""

    __slots__ = ("_real", "_lo", "_hi", "_tenant")

    def __init__(self, real, lo: int, hi: int, tenant_id: str) -> None:
        self._real = real
        self._lo = lo
        self._hi = hi
        self._tenant = tenant_id

    def _check(self, lo: int, hi: int) -> None:
        if lo < self._lo or hi > self._hi:
            raise TenantIsolationError(
                f"tenant {self._tenant!r}: DV-memory access [{lo}, {hi}) "
                f"outside its window [{self._lo}, {self._hi})")

    def _check_addrs(self, addrs) -> None:
        a = np.asarray(addrs)
        if a.size:
            self._check(int(a.min()), int(a.max()) + 1)

    def read_word(self, addr: int) -> int:
        self._check(addr, addr + 1)
        return self._real.read_word(addr)

    def write_word(self, addr: int, value: int) -> None:
        self._check(addr, addr + 1)
        self._real.write_word(addr, value)

    def scatter(self, addrs, values) -> None:
        self._check_addrs(addrs)
        self._real.scatter(addrs, values)

    def gather(self, addrs):
        self._check_addrs(addrs)
        return self._real.gather(addrs)

    def write_range(self, start: int, values) -> None:
        self._check(start, start + int(np.asarray(values).size))
        self._real.write_range(start, values)

    def read_range(self, start: int, n: int):
        self._check(start, start + n)
        return self._real.read_range(start, n)

    def __getattr__(self, name: str):
        return getattr(self._real, name)


class TenantVICView:
    """A VIC as one tenant sees it: local identity, guarded resources.

    ``vic_id`` is the tenant-*local* rank, so a plain
    :class:`~repro.dv.api.DataVortexAPI` built over this view runs
    entirely in local rank space.  Counters and DV memory are guarded;
    the FIFO and PCIe bus are the real per-node devices (they are
    private to the node, hence to the tenant owning it).
    """

    def __init__(self, vic, partition: TenantPartition,
                 local_rank: int) -> None:
        self._real = vic
        self.engine = vic.engine
        self.config = vic.config
        self.vic_id = local_rank
        self.counters = _GuardedCounters(
            vic.counters, partition.allowed_counters, partition.tenant_id)
        self.memory = _GuardedMemory(
            vic.memory, partition.mem_lo, partition.mem_hi,
            partition.tenant_id)
        self.fifo = vic.fifo
        self.pcie = vic.pcie

    @property
    def packets_received(self) -> int:
        return self._real.packets_received

    def __getattr__(self, name: str):
        return getattr(self._real, name)


class TenantNetworkView:
    """A flow network restricted to one tenant's rank window.

    Ranks on both sides of :meth:`transmit` / :meth:`transmit_batch` are
    tenant-local; the view translates them by the partition base,
    bounds-checks destinations against the window, validates every
    effect payload against the counter / memory windows, and rewrites
    ``Query.reply_vic`` (the only payload field naming a rank) to global
    space.  Everything else delegates to the real network.
    """

    def __init__(self, network, partition: TenantPartition) -> None:
        self._net = network
        self._part = partition
        self._base = partition.base
        self._n = partition.n_ranks
        tid = partition.tenant_id
        self._obs_on = obsreg.enabled()
        if self._obs_on:
            self._m_transfers = obsreg.counter(
                "tenant.net.transfers", tenant=tid)
            self._m_packets = obsreg.counter(
                "tenant.net.packets", tenant=tid)

    # -- rank / payload validation ----------------------------------------
    def _xlate(self, rank: int, role: str) -> int:
        if not 0 <= rank < self._n:
            raise TenantIsolationError(
                f"tenant {self._part.tenant_id!r}: {role} rank {rank} "
                f"outside its {self._n}-rank window")
        return rank + self._base

    def _check_payload(self, payload: Any) -> Any:
        if payload is None:
            return None
        if isinstance(payload, MemWrite):
            self._check_addrs(payload.addrs)
            self._check_counter(payload.counter)
        elif isinstance(payload, FifoPush):
            self._check_counter(payload.counter)
        elif isinstance(payload, (CounterDec, CounterSet)):
            self._check_counter(payload.index)
        elif isinstance(payload, Query):
            self._check(payload.addr, payload.addr + 1)
            self._check(payload.reply_addr, payload.reply_addr + 1)
            self._check_counter(payload.reply_counter)
            return Query(
                addr=payload.addr,
                reply_vic=self._xlate(payload.reply_vic, "reply"),
                reply_addr=payload.reply_addr,
                reply_counter=payload.reply_counter)
        return payload

    def _check(self, lo: int, hi: int) -> None:
        part = self._part
        if lo < part.mem_lo or hi > part.mem_hi:
            raise TenantIsolationError(
                f"tenant {part.tenant_id!r}: remote DV-memory access "
                f"[{lo}, {hi}) outside its window "
                f"[{part.mem_lo}, {part.mem_hi})")

    def _check_addrs(self, addrs) -> None:
        a = np.asarray(addrs)
        if a.size:
            self._check(int(a.min()), int(a.max()) + 1)

    def _check_counter(self, idx: Optional[int]) -> None:
        if idx is not None and idx not in self._part.allowed_counters:
            raise TenantIsolationError(
                f"tenant {self._part.tenant_id!r}: remote touch of "
                f"counter {idx} outside its partition window")

    # -- transfers ---------------------------------------------------------
    def transmit(self, src: int, dest: int, n_packets: int,
                 payload: Any = None,
                 inject_rate: Optional[float] = None) -> Event:
        gsrc = self._xlate(src, "source")
        gdest = self._xlate(dest, "destination")
        payload = self._check_payload(payload)
        if self._obs_on:
            self._m_transfers.inc()
            self._m_packets.inc(n_packets)
        return self._net.transmit(gsrc, gdest, n_packets, payload,
                                  inject_rate)

    def transmit_batch(self, src: int, dests: Sequence[int],
                       counts: Sequence[int], payloads: Sequence[Any],
                       inject_rate: Optional[float] = None,
                       collect: bool = True) -> List[Event]:
        gsrc = self._xlate(src, "source")
        d = np.asarray(dests, dtype=np.int64)
        if d.size and (d.min() < 0 or d.max() >= self._n):
            bad = int(d[(d < 0) | (d >= self._n)][0])
            raise TenantIsolationError(
                f"tenant {self._part.tenant_id!r}: destination rank "
                f"{bad} outside its {self._n}-rank window")
        payloads = [self._check_payload(p) for p in payloads]
        if self._obs_on:
            self._m_transfers.inc(len(payloads))
            self._m_packets.inc(int(np.asarray(counts).sum()))
        return self._net.transmit_batch(gsrc, d + self._base, counts,
                                        payloads, inject_rate=inject_rate,
                                        collect=collect)

    def scatter(self, src: int, dests: Sequence[int],
                counts: Sequence[int], payloads: Sequence[Any],
                inject_rate: Optional[float] = None) -> Event:
        events = self.transmit_batch(src, dests, counts, payloads,
                                     inject_rate=inject_rate)
        return self._net.engine.all_of(events)

    def time_of_flight(self, src: int, dest: int, now: float) -> float:
        return self._net.time_of_flight(src + self._base,
                                        dest + self._base, now)

    def attach(self, port: int, receiver) -> None:
        raise TenancyError(
            "tenant network views do not own port attachment; VICs "
            "attach to the real network at construction")

    def __getattr__(self, name: str):
        return getattr(self._net, name)


# -------------------------------------------------------------- IB view ---

class TenantFabricView:
    """An IB fat tree restricted to one tenant's rank window.

    Translates ranks at :meth:`attach` / :meth:`transfer`, counts
    per-tenant ``tenant.net.messages`` / ``tenant.net.bytes``, and —
    when the partition carries an ``ib_credits`` budget — caps the
    tenant's in-flight transfers, queueing excess sends behind proxy
    completion events that fire once a credit frees up.  With
    ``ib_credits=None`` the transfer path is pure passthrough.
    """

    def __init__(self, fabric, partition: TenantPartition) -> None:
        self._fabric = fabric
        self._part = partition
        self._base = partition.base
        self._n = partition.n_ranks
        self._credits = partition.ib_credits
        self._inflight = 0
        self._waitq: deque = deque()
        tid = partition.tenant_id
        self._obs_on = obsreg.enabled()
        if self._obs_on:
            self._m_messages = obsreg.counter(
                "tenant.net.messages", tenant=tid)
            self._m_bytes = obsreg.counter("tenant.net.bytes", tenant=tid)

    def _xlate(self, rank: int, role: str) -> int:
        if not 0 <= rank < self._n:
            raise TenantIsolationError(
                f"tenant {self._part.tenant_id!r}: {role} rank {rank} "
                f"outside its {self._n}-rank window")
        return rank + self._base

    def attach(self, node: int, receiver) -> None:
        base = self._base

        def _local_receiver(src, kind, payload, nbytes):
            receiver(src - base, kind, payload, nbytes)

        self._fabric.attach(self._xlate(node, "attach"), _local_receiver)

    def leaf_of(self, node: int) -> int:
        return self._fabric.leaf_of(node + self._base)

    def hops(self, src: int, dst: int) -> int:
        return self._fabric.hops(src + self._base, dst + self._base)

    def transfer(self, src: int, dst: int, nbytes: int, *,
                 kind: str = "data", payload: Any = None) -> Event:
        gsrc = self._xlate(src, "source")
        gdst = self._xlate(dst, "destination")
        if self._obs_on:
            self._m_messages.inc()
            self._m_bytes.inc(nbytes)
        if self._credits is None:
            return self._fabric.transfer(gsrc, gdst, nbytes, kind=kind,
                                         payload=payload)
        if self._inflight < self._credits:
            return self._issue(gsrc, gdst, nbytes, kind, payload)
        proxy = CompletionEvent(
            self._fabric.engine, fabric="ib", op=kind, src=gsrc, dest=gdst,
            nbytes=nbytes, name=f"tenant:{self._part.tenant_id} queued")
        self._waitq.append((proxy, gsrc, gdst, nbytes, kind, payload))
        return proxy

    def _issue(self, gsrc: int, gdst: int, nbytes: int, kind: str,
               payload: Any, proxy: Optional[Event] = None) -> Event:
        self._inflight += 1
        ev = self._fabric.transfer(gsrc, gdst, nbytes, kind=kind,
                                   payload=payload)
        if proxy is not None:
            ev.add_callback(lambda e, p=proxy: p.succeed(e.value))
        ev.add_callback(self._release)
        return ev

    def _release(self, _ev: Event) -> None:
        self._inflight -= 1
        if self._waitq:
            proxy, gsrc, gdst, nbytes, kind, payload = self._waitq.popleft()
            self._issue(gsrc, gdst, nbytes, kind, payload, proxy=proxy)

    def __getattr__(self, name: str):
        return getattr(self._fabric, name)
