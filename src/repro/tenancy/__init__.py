"""Multi-tenant co-scheduling over the shared fabrics.

Public surface:

* :class:`~repro.tenancy.spec.TenantSpec` — one workload plus its
  resource slice (rank window or share, counter / DV-memory windows,
  IB credit budget, per-tenant traffic / faults / aggregation).
* :func:`~repro.tenancy.runner.run_cotenants` — run N tenants
  concurrently on one cluster; returns a
  :class:`~repro.tenancy.runner.TenancyResult` with per-tenant metrics
  and ``tenant.<id>.*``-style obs series reconciled against the
  cluster-wide totals.
* :func:`~repro.tenancy.experiments.interference_table` /
  ``fig_interference`` — the slowdown matrix (co-scheduled runtime over
  solo runtime, per fabric, across regular x irregular pairs).
* :func:`shadow_session` — scope under which every
  :func:`~repro.core.cluster.run_spmd` call is routed through the
  tenancy stack as a single identity tenant; the ``tenancy`` golden
  determinism axis runs every pinned figure inside one and demands
  bit-identity.

See docs/tenancy.md.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.tenancy.spec import (TenancyError, TenantIsolationError,
                                TenantPartition, TenantSpec, WORKLOADS,
                                merge_fault_plans, resolve_partitions,
                                spec_from_dict, spec_to_dict)

__all__ = [
    "TenancyError",
    "TenantIsolationError",
    "TenantPartition",
    "TenantSpec",
    "WORKLOADS",
    "merge_fault_plans",
    "resolve_partitions",
    "spec_to_dict",
    "spec_from_dict",
    "run_cotenants",
    "TenancyResult",
    "shadow_session",
    "shadow_active",
]

_SHADOW_SOLO = False


@contextmanager
def shadow_session(enabled: bool = True):
    """Route every ``run_spmd`` call in scope through the tenancy stack
    as a single full-width identity tenant (the ``tenancy`` axis)."""
    global _SHADOW_SOLO
    prev = _SHADOW_SOLO
    _SHADOW_SOLO = bool(enabled)
    try:
        yield
    finally:
        _SHADOW_SOLO = prev


def shadow_active() -> bool:
    """True inside a :func:`shadow_session`."""
    return _SHADOW_SOLO


def __getattr__(name: str):
    # runner/experiments import kernels and agg; keep `import
    # repro.tenancy` light by resolving them lazily.
    if name in ("run_cotenants", "TenancyResult", "run_solo_shadow"):
        from repro.tenancy import runner
        return getattr(runner, name)
    if name in ("interference_point", "interference_table",
                "default_pairs"):
        from repro.tenancy import experiments
        return getattr(experiments, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
