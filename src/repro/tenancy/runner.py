"""The co-scheduler: N tenants, one engine, one fabric.

:func:`run_cotenants` resolves a tenant list into contiguous rank
windows on a single :class:`~repro.core.cluster.ClusterSpec`-sized
fabric and runs every tenant's program concurrently on one shared
:class:`~repro.sim.engine.Engine`, so tenants contend for injection
ports, switch load and spine uplinks physically.  Construction order
deliberately replicates :func:`repro.core.cluster.run_spmd` — network,
then every VIC, then per tenant (APIs in rank order, hardware barrier,
fast barrier), then contexts, then processes — because the engine
breaks simultaneous-event ties by creation sequence: with a single
tenant spanning the whole cluster the sequence is *identical* to the
untenanted path, which is what makes solo runs byte-identical (the
``tenancy`` determinism axis pins this on every golden figure via
:func:`run_solo_shadow`).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.cluster import ClusterSpec, RunResult
from repro.core.context import RankContext
from repro.core.trace import Tracer
from repro.dv.api import DataVortexAPI
from repro.dv.barrier import FastBarrier, HardwareBarrier
from repro.dv.fastflow import FastFlowNetwork
from repro.dv.flow import FlowNetwork
from repro.dv.vic import VIC
from repro.ib.fastfabric import FastIBFabric
from repro.ib.fabric import IBFabric
from repro.ib.mpi import MPIRuntime
from repro.obs import registry as obsreg
from repro.sim.engine import Engine
from repro.tenancy.spec import (TenantPartition, TenantSpec, TenancyError,
                                merge_fault_plans, resolve_partitions,
                                tenant_seed)
from repro.tenancy.views import (TenantFabricView, TenantNetworkView,
                                 TenantVICView)
from repro.tenancy.workloads import TenantWorkload, build_workload

__all__ = ["TenancyResult", "run_cotenants", "run_solo_shadow"]


@dataclass
class TenancyResult:
    """Outcome of one co-scheduled run."""

    fabric: str
    #: per-tenant metrics dicts (the same shape the standalone kernel
    #: entry points report), keyed by tenant id
    tenants: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: raw per-rank values, keyed by tenant id
    values: Dict[str, List[Dict[str, Any]]] = field(default_factory=dict)
    #: simulated cluster time when the last tenant finished
    elapsed: float = 0.0
    net_stats: Any = None
    engine: Optional[Engine] = None
    tracer: Optional[Tracer] = None


@dataclass(frozen=True)
class _Runnable:
    """One resolved tenant ready to execute."""

    partition: TenantPartition
    program: Any                     # program(ctx) -> generator
    seed: int
    name_prefix: str                 # process name prefix ("" = legacy)


def _execute(spec: ClusterSpec, runnables: Sequence[_Runnable],
             fabric: str, max_events: Optional[int]):
    """Build the shared fabric, one view stack per tenant, and run.

    Returns ``(engine, tracer, per-runnable process lists, net_stats)``.
    The body mirrors ``run_spmd`` exactly — see the module docstring.
    """
    engine = Engine()
    tracer = Tracer(enabled=spec.trace)
    n = spec.n_nodes

    context_groups: List[List[RankContext]] = []
    net_stats: Any = None
    if fabric == "dv":
        net_cls = (FastFlowNetwork if spec.flow_impl == "fast"
                   else FlowNetwork)
        network = net_cls(engine, spec.dv, n)
        vics = [VIC(engine, spec.dv, i, network) for i in range(n)]
        for rn in runnables:
            part = rn.partition
            net_view = TenantNetworkView(network, part)
            vic_views = [TenantVICView(vics[part.base + i], part, i)
                         for i in range(part.n_ranks)]
            apis = [DataVortexAPI(engine, spec.dv, v, net_view)
                    for v in vic_views]
            hw_barrier = HardwareBarrier(engine, spec.dv, vic_views,
                                         net_view)
            fast_barrier = FastBarrier(engine, spec.dv, vic_views,
                                       net_view)
            for api in apis:
                api.hw_barrier = hw_barrier
                api.fast_barrier_impl = fast_barrier
            context_groups.append([
                RankContext(engine, r, part.n_ranks, spec.node, tracer,
                            rn.seed, dv=apis[r])
                for r in range(part.n_ranks)])
        net_stats = network.stats
    else:
        fabric_cls = (FastIBFabric if spec.flow_impl == "fast"
                      else IBFabric)
        shared = fabric_cls(engine, spec.ib, n,
                            contention=spec.ib_contention)
        for rn in runnables:
            part = rn.partition
            view = TenantFabricView(shared, part)
            runtime = MPIRuntime(engine, spec.ib, part.n_ranks,
                                 contention=spec.ib_contention,
                                 fabric=view)
            context_groups.append([
                RankContext(engine, r, part.n_ranks, spec.node, tracer,
                            rn.seed, mpi=runtime.endpoint(r))
                for r in range(part.n_ranks)])
        net_stats = shared.stats

    proc_groups = []
    for rn, contexts in zip(runnables, context_groups):
        proc_groups.append([
            engine.process(rn.program(ctx),
                           name=f"{rn.name_prefix}rank{ctx.rank}")
            for ctx in contexts])
    engine.run(max_events=max_events)

    failures = []
    for procs in proc_groups:
        for p in procs:
            if not p.triggered:
                raise RuntimeError(
                    f"deadlock: {p.name} never finished "
                    f"(fabric={fabric})")
            if not p.ok:
                failures.append(p)
    if failures:
        raise failures[0].value

    return engine, tracer, proc_groups, net_stats


def run_cotenants(spec: ClusterSpec, tenants: Sequence[TenantSpec],
                  fabric: str = "dv",
                  max_events: Optional[int] = None) -> TenancyResult:
    """Co-schedule ``tenants`` on one ``spec``-sized cluster.

    Tenant rank windows are assigned contiguously in list order and
    must fit inside ``spec.n_nodes`` (ranks beyond the last window sit
    idle, which keeps solo baselines and co-scheduled runs on
    identically sized fabrics).  Per-tenant fault plans are merged into
    one cluster-wide plan (outages translated to global ports;
    conflicting probabilistic knobs raise
    :class:`~repro.tenancy.spec.TenancyError`).  A tenant with no
    explicit ``seed`` inherits ``spec.seed``.
    """
    if fabric not in ("dv", "mpi"):
        raise TenancyError(
            f'fabric must be "dv" or "mpi", got {fabric!r}')
    tenants = list(tenants)
    parts = resolve_partitions(tenants, spec.n_nodes, spec.dv)
    plan = merge_fault_plans(tenants, parts, spec.seed)

    from repro import agg as aggmod
    runnables: List[_Runnable] = []
    workloads: List[TenantWorkload] = []
    for t, part in zip(tenants, parts):
        seed = tenant_seed(t, spec.seed)
        # Only the irregular kernels consult the scoped aggregation
        # override in the legacy path (run_fft1d / run_snap never call
        # resolve_spec), so an ambient agg.session must stay invisible
        # to FFT/scan tenants exactly as it is untenanted; an explicit
        # per-tenant aggregation on those workloads still raises.
        agg_spec = t.aggregation
        if agg_spec is None and t.workload in ("gups", "bfs"):
            agg_spec = aggmod.resolve_spec(None, tenant=t.tenant_id)
        wl = build_workload(t.workload, fabric=fabric,
                            n_ranks=part.n_ranks, seed=seed,
                            params=t.params, traffic=t.traffic,
                            agg_spec=agg_spec)
        workloads.append(wl)
        runnables.append(_Runnable(partition=part, program=wl.program,
                                   seed=seed,
                                   name_prefix=f"{t.tenant_id}:"))

    session = nullcontext()
    if plan is not None:
        from repro import faults
        session = faults.session(plan)
    with session:
        engine, tracer, proc_groups, net_stats = _execute(
            spec, runnables, fabric, max_events)

    result = TenancyResult(fabric=fabric, elapsed=engine.now,
                           net_stats=net_stats, engine=engine,
                           tracer=tracer)
    obs_on = obsreg.enabled()
    for t, wl, procs in zip(tenants, workloads, proc_groups):
        values = [p.value for p in procs]
        metrics = wl.finish(values)
        result.values[t.tenant_id] = values
        result.tenants[t.tenant_id] = metrics
        if obs_on and "elapsed_s" in metrics:
            obsreg.gauge("tenant.elapsed_s",
                         tenant=t.tenant_id).set(metrics["elapsed_s"])
    return result


def run_solo_shadow(spec: ClusterSpec, program,
                    fabric: str = "dv",
                    max_events: Optional[int] = None) -> RunResult:
    """Run an arbitrary ``run_spmd`` program through the tenancy stack.

    Builds a single identity partition spanning every rank — base 0,
    full counter and DV-memory windows, no credit budget — so every
    translation is the identity and every guard passes.  This is the
    ``tenancy`` determinism axis: every golden figure re-run through
    this path must be bit-identical to the untenanted serial body.
    """
    n_ctrs = spec.dv.group_counters
    part = TenantPartition(
        tenant_id="solo", base=0, n_ranks=spec.n_nodes,
        ctr_lo=0, ctr_hi=n_ctrs,
        mem_lo=0, mem_hi=spec.dv.dv_memory_words,
        ib_credits=None,
        allowed_counters=frozenset(range(n_ctrs)))
    rn = _Runnable(partition=part, program=program, seed=spec.seed,
                   name_prefix="")
    engine, tracer, proc_groups, net_stats = _execute(
        spec, [rn], fabric, max_events)
    return RunResult(values=[p.value for p in proc_groups[0]],
                     elapsed=engine.now, tracer=tracer, engine=engine,
                     fabric=fabric, net_stats=net_stats)
