"""Tenant specifications and fabric partitioning.

A :class:`TenantSpec` names one workload plus the slice of shared fabric
resources it may touch: a contiguous rank window, an allowed VIC
counter range and DV-memory slot window on the Data Vortex side, and an
optional in-flight credit budget on the IB side.  The co-scheduler
(:mod:`repro.tenancy.runner`) resolves a list of tenant specs against a
:class:`~repro.core.cluster.ClusterSpec` into :class:`TenantPartition`
records — absolute rank bases plus enforcement windows — and runs every
tenant on ONE shared simulation engine and ONE shared fabric, so
contention between tenants is physical, not modelled.

Partitions are *enforcement-only*: counter indices and DV-memory
addresses are never remapped (the kernels, the aggregation runtime and
the hardware barriers all hard-code specific counters), they are only
checked against the tenant's allowed window.  Infrastructure counters
(the scratch counter, the hardware-barrier pair and the fast-barrier
defaults) are always permitted, because every tenant owns a private
barrier instance over its own rank window.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.faults.plan import FaultPlan
from repro.sim.rng import derive_seed
from repro.traffic.model import TrafficModel

__all__ = [
    "TenancyError",
    "TenantIsolationError",
    "TenantSpec",
    "TenantPartition",
    "WORKLOADS",
    "resolve_partitions",
    "merge_fault_plans",
    "tenant_seed",
    "spec_to_dict",
    "spec_from_dict",
]

#: Workloads the tenancy layer knows how to build (regular x irregular
#: per the paper's dichotomy): GUPS and BFS are irregular, FFT and the
#: SNAP-style transport scan are regular.
WORKLOADS = ("gups", "bfs", "fft", "scan")


class TenancyError(ValueError):
    """A tenant list cannot be scheduled (bad shares, overlap, ...)."""


class TenantIsolationError(RuntimeError):
    """A tenant touched a resource outside its partition."""


@dataclass(frozen=True)
class TenantSpec:
    """One co-scheduled workload and its resource slice.

    Exactly one of ``n_ranks`` (absolute rank count) or ``share``
    (fraction of the cluster) must be given.  ``seed=None`` inherits the
    cluster seed — which keeps a solo tenant byte-identical to the
    legacy untenanted path.  ``counters``/``dv_slots`` default to the
    full hardware ranges (no enforcement failures possible);
    ``ib_credits=None`` means an unbounded in-flight budget.
    """

    tenant_id: str
    workload: str
    params: Mapping[str, Any] = field(default_factory=dict)
    n_ranks: Optional[int] = None
    share: Optional[float] = None
    seed: Optional[int] = None
    traffic: Optional[TrafficModel] = None
    plan: Optional[FaultPlan] = None
    aggregation: Optional[object] = None  # repro.agg.AggSpec
    counters: Optional[Tuple[int, int]] = None
    dv_slots: Optional[Tuple[int, int]] = None
    ib_credits: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.tenant_id or not isinstance(self.tenant_id, str):
            raise TenancyError("tenant_id must be a non-empty string")
        if self.workload not in WORKLOADS:
            raise TenancyError(
                f"unknown workload {self.workload!r}; "
                f"expected one of {WORKLOADS}")
        if (self.n_ranks is None) == (self.share is None):
            raise TenancyError(
                f"tenant {self.tenant_id!r}: give exactly one of "
                "n_ranks or share")
        if self.n_ranks is not None and self.n_ranks < 1:
            raise TenancyError(
                f"tenant {self.tenant_id!r}: n_ranks must be >= 1")
        if self.share is not None and not 0.0 < self.share <= 1.0:
            raise TenancyError(
                f"tenant {self.tenant_id!r}: share must be in (0, 1]")
        for name in ("counters", "dv_slots"):
            rng = getattr(self, name)
            if rng is None:
                continue
            lo, hi = rng
            if lo < 0 or hi <= lo:
                raise TenancyError(
                    f"tenant {self.tenant_id!r}: bad {name} window {rng}")
        if self.ib_credits is not None and self.ib_credits < 1:
            raise TenancyError(
                f"tenant {self.tenant_id!r}: ib_credits must be >= 1")


@dataclass(frozen=True)
class TenantPartition:
    """A tenant's resolved slice of the shared fabric."""

    tenant_id: str
    base: int                     # first absolute rank
    n_ranks: int                  # contiguous window size
    ctr_lo: int                   # allowed user-counter range [lo, hi)
    ctr_hi: int
    mem_lo: int                   # allowed DV-memory window [lo, hi)
    mem_hi: int
    ib_credits: Optional[int]
    allowed_counters: frozenset = frozenset()

    def owns_rank(self, rank: int) -> bool:
        return self.base <= rank < self.base + self.n_ranks


def _infra_counters(dv_config) -> frozenset:
    """Counters every tenant may touch regardless of its window: the
    scratch counter, the hardware-barrier pair, and the two top user
    counters :class:`~repro.dv.barrier.FastBarrier` defaults to."""
    reserved = {dv_config.scratch_counter, *dv_config.barrier_counters}
    user = [i for i in range(dv_config.group_counters) if i not in reserved]
    return frozenset(reserved | {user[-1], user[-2]})


def resolve_partitions(tenants: Sequence[TenantSpec], n_nodes: int,
                       dv_config) -> List[TenantPartition]:
    """Assign contiguous rank windows (in tenant order) and resolve the
    counter / DV-memory enforcement windows against the hardware size."""
    if not tenants:
        raise TenancyError("need at least one tenant")
    ids = [t.tenant_id for t in tenants]
    if len(set(ids)) != len(ids):
        raise TenancyError(f"duplicate tenant ids in {ids}")

    infra = _infra_counters(dv_config)
    n_ctrs = dv_config.group_counters
    n_words = dv_config.dv_memory_words

    parts: List[TenantPartition] = []
    base = 0
    for t in tenants:
        n = t.n_ranks if t.n_ranks is not None else max(
            1, int(round(t.share * n_nodes)))
        ctr_lo, ctr_hi = t.counters if t.counters is not None else (0, n_ctrs)
        mem_lo, mem_hi = t.dv_slots if t.dv_slots is not None else (
            0, n_words)
        if ctr_hi > n_ctrs:
            raise TenancyError(
                f"tenant {t.tenant_id!r}: counter window "
                f"({ctr_lo}, {ctr_hi}) exceeds {n_ctrs} group counters")
        if mem_hi > n_words:
            raise TenancyError(
                f"tenant {t.tenant_id!r}: DV-memory window "
                f"({mem_lo}, {mem_hi}) exceeds {n_words} words")
        parts.append(TenantPartition(
            tenant_id=t.tenant_id, base=base, n_ranks=n,
            ctr_lo=ctr_lo, ctr_hi=ctr_hi, mem_lo=mem_lo, mem_hi=mem_hi,
            ib_credits=t.ib_credits,
            allowed_counters=frozenset(range(ctr_lo, ctr_hi)) | infra))
        base += n
    if base > n_nodes:
        raise TenancyError(
            f"tenants need {base} ranks but the cluster has {n_nodes}")
    return parts


def tenant_seed(tenant: TenantSpec, cluster_seed: int) -> int:
    """A tenant's effective seed: its own if set, else the cluster's.

    Inheriting the cluster seed (rather than deriving a per-tenant
    stream) is deliberate — it keeps a solo tenant bit-identical to the
    untenanted path, and keeps a victim workload's own randomness
    constant between its solo baseline and co-scheduled runs.
    Experiments that want decorrelated aggressors pass an explicit
    ``seed=derive_seed(cluster_seed, "tenant", tenant_id)``.
    """
    return cluster_seed if tenant.seed is None else tenant.seed


def aggressor_seed(cluster_seed: int, tenant_id: str) -> int:
    """The derived stream interference experiments give aggressors."""
    return derive_seed(cluster_seed, "tenant", tenant_id)


# ------------------------------------------------------------ fault merge ---

_OUTAGE_FIELDS = ("link_outages", "node_outages")
_PROB_FIELDS = tuple(
    f.name for f in fields(FaultPlan)
    if f.name not in ("seed", *_OUTAGE_FIELDS))


def merge_fault_plans(tenants: Sequence[TenantSpec],
                      partitions: Sequence[TenantPartition],
                      cluster_seed: int) -> Optional[FaultPlan]:
    """Compose per-tenant fault plans into one cluster-wide plan.

    Outage windows are translated by the tenant's rank base (ports are
    tenant-local in a :class:`TenantSpec`) and unioned.  Probabilistic
    knobs are fabric-global in the injector, so tenants that set them
    must agree; a conflict raises :class:`TenancyError` rather than
    silently averaging.  Returns ``None`` when no tenant carries a plan,
    leaving any ambient ``faults.session`` untouched.
    """
    plans = [(t, p) for t, p in zip(tenants, partitions)
             if t.plan is not None]
    if not plans:
        return None

    merged: Dict[str, Any] = {"seed": cluster_seed}
    for name in _OUTAGE_FIELDS:
        windows: List[Tuple] = []
        for t, part in plans:
            for port, t0, t1 in getattr(t.plan, name):
                if not 0 <= port < part.n_ranks:
                    raise TenancyError(
                        f"tenant {t.tenant_id!r}: {name} port {port} "
                        f"outside its {part.n_ranks}-rank window")
                windows.append((port + part.base, t0, t1))
        merged[name] = tuple(windows)

    defaults = FaultPlan()
    for name in _PROB_FIELDS:
        default = getattr(defaults, name)
        setters = [(t.tenant_id, getattr(t.plan, name))
                   for t, _ in plans if getattr(t.plan, name) != default]
        values = {v for _, v in setters}
        if len(values) > 1:
            raise TenancyError(
                f"conflicting fault knob {name!r} across tenants "
                f"{sorted(tid for tid, _ in setters)}: probabilistic "
                "fault knobs are fabric-global and must agree")
        merged[name] = setters[0][1] if setters else default
    return FaultPlan(**merged)


# ------------------------------------------------------- JSON round-trip ---

def spec_to_dict(tenant: TenantSpec) -> Dict[str, Any]:
    """A JSON-able description of ``tenant`` (traffic models, which are
    live objects, are not serialised and must be re-attached)."""
    if tenant.traffic is not None:
        raise TenancyError(
            f"tenant {tenant.tenant_id!r}: traffic models are not "
            "JSON-serialisable; attach them after spec_from_dict")
    out: Dict[str, Any] = {
        "tenant_id": tenant.tenant_id,
        "workload": tenant.workload,
        "params": dict(tenant.params),
    }
    for name in ("n_ranks", "share", "seed", "ib_credits"):
        if getattr(tenant, name) is not None:
            out[name] = getattr(tenant, name)
    for name in ("counters", "dv_slots"):
        if getattr(tenant, name) is not None:
            out[name] = list(getattr(tenant, name))
    if tenant.plan is not None:
        from dataclasses import asdict
        out["plan"] = asdict(tenant.plan)
    if tenant.aggregation is not None:
        from dataclasses import asdict
        out["aggregation"] = asdict(tenant.aggregation)
    return out


def spec_from_dict(data: Mapping[str, Any]) -> TenantSpec:
    """Inverse of :func:`spec_to_dict`."""
    kw: Dict[str, Any] = dict(data)
    for name in ("counters", "dv_slots"):
        if kw.get(name) is not None:
            kw[name] = tuple(kw[name])
    if kw.get("plan") is not None:
        plan = dict(kw["plan"])
        for name in _OUTAGE_FIELDS:
            if name in plan:
                plan[name] = tuple(tuple(w) for w in plan[name])
        kw["plan"] = FaultPlan(**plan)
    if kw.get("aggregation") is not None:
        from repro.agg import AggSpec
        kw["aggregation"] = AggSpec(**dict(kw["aggregation"]))
    return TenantSpec(**kw)
