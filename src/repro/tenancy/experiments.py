"""The interference matrix: ``fig_interference``.

For each ordered (victim, aggressor) pair the experiment runs the
victim twice on the *same* cluster geometry — once alone in its rank
window (solo baseline; the aggressor's ranks sit idle) and once
co-scheduled with the aggressor — and reports the slowdown
``elapsed_co / elapsed_solo`` per fabric.

Geometry matters here and is itself the finding.  The Data Vortex side
runs the stock switch: its only cross-tenant coupling is the
load-driven deflection penalty (paper §II, "statistically ~2 hops"
under contention), which prices into *latency*, so DV slowdowns sit
near 1.0 — the flat deflection fabric isolates co-tenants.  The IB side
runs a deliberately oversubscribed fat tree whose leaf size does not
divide the tenant windows, so both tenants straddle a shared leaf and
their cross-leaf flows contend for its few uplinks — fat-tree slowdowns
reach tens of percent.  Regular tenants (FFT, the transport scan) are
the heaviest aggressors because their dense phases hold the shared
uplinks busy for sustained stretches; irregular victims (GUPS, BFS)
feel them through queueing on the straddled leaf.

Points run through the PR-2 cached executor (solo baselines dedupe
across pairs), and the golden harness pins a 4-pair matrix on both
fabrics across every determinism axis.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.core.report import Table

__all__ = [
    "DEFAULT_PAIRS",
    "WORKLOAD_PARAMS",
    "interference_point",
    "interference_table",
    "default_pairs",
]

#: Ordered (victim, aggressor) pairs: every irregular x regular
#: combination, both directions.
DEFAULT_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("gups", "fft"), ("fft", "gups"),
    ("gups", "scan"), ("scan", "gups"),
    ("bfs", "fft"), ("fft", "bfs"),
    ("bfs", "scan"), ("scan", "bfs"),
)

#: Per-workload parameters sized so every tenant communicates in a
#: sustained way for a few tens of simulated microseconds — long enough
#: that co-scheduled tenants genuinely overlap on the wire.
WORKLOAD_PARAMS: Dict[str, Dict[str, Any]] = {
    "gups": {"table_words": 1 << 12, "n_updates": 1 << 10, "window": 32},
    "bfs": {"scale": 10, "edgefactor": 16, "window": 64},
    "fft": {"log2_points": 14},
    "scan": {"nx": 16, "ny_per_rank": 4, "nz": 16, "n_angles": 16,
             "chunk": 4},
}


def default_pairs(tenants: Optional[Sequence[str]] = None
                  ) -> Tuple[Tuple[str, str], ...]:
    """The pair list: all ordered pairs over ``tenants`` when given
    (the CLI ``--tenants`` idiom), else :data:`DEFAULT_PAIRS`."""
    if tenants is None:
        return DEFAULT_PAIRS
    names = list(tenants)
    if len(names) < 2:
        raise ValueError(
            f"need at least two tenant workloads, got {names}")
    return tuple((v, a) for v in names for a in names if v != a)


def interference_point(*, victim: str, aggressor: Optional[str],
                       fabric: str, nodes_per_tenant: int = 4,
                       seed: int = 2017, flow_impl: str = "reference",
                       ib_leaf_size: int = 3, ib_uplinks: int = 2,
                       workload_params: Optional[Mapping] = None
                       ) -> Dict[str, Any]:
    """One cell's raw timing: the victim alone (``aggressor=None``) or
    co-scheduled, on a ``2 * nodes_per_tenant``-node cluster.

    Module-level and keyword-only so the pool executor can pickle it
    and the cache can key it.  The victim keeps the cluster seed (its
    own randomness is identical solo and co-scheduled); the aggressor
    runs a derived ``("tenant", "aggressor")`` stream.
    """
    from repro.core.cluster import ClusterSpec
    from repro.ib.config import IBConfig
    from repro.tenancy.runner import run_cotenants
    from repro.tenancy.spec import TenantSpec, aggressor_seed

    params = dict(WORKLOAD_PARAMS)
    for name, over in dict(workload_params or {}).items():
        params[name] = {**params.get(name, {}), **dict(over)}

    spec = ClusterSpec(
        n_nodes=2 * int(nodes_per_tenant), seed=int(seed),
        flow_impl=flow_impl,
        ib=IBConfig(leaf_size=int(ib_leaf_size),
                    uplinks_per_leaf=int(ib_uplinks)))
    tenants = [TenantSpec(tenant_id="victim", workload=victim,
                          params=params[victim],
                          n_ranks=int(nodes_per_tenant))]
    if aggressor:
        tenants.append(TenantSpec(
            tenant_id="aggressor", workload=aggressor,
            params=params[aggressor], n_ranks=int(nodes_per_tenant),
            seed=aggressor_seed(int(seed), "aggressor")))
    res = run_cotenants(spec, tenants, fabric=fabric)
    out: Dict[str, Any] = {
        "victim": victim,
        "aggressor": aggressor or "",
        "fabric": fabric,
        "elapsed_victim_s": res.tenants["victim"]["elapsed_s"],
    }
    if aggressor:
        out["elapsed_aggressor_s"] = res.tenants["aggressor"]["elapsed_s"]
    return out


def interference_table(executor=None, *,
                       pairs: Sequence[Tuple[str, str]] = DEFAULT_PAIRS,
                       fabrics: Sequence[str] = ("dv", "mpi"),
                       nodes_per_tenant: int = 4, seed: int = 2017,
                       flow_impl: str = "reference",
                       ib_leaf_size: int = 3, ib_uplinks: int = 2,
                       workload_params: Optional[Mapping] = None
                       ) -> Table:
    """The slowdown matrix: one row per ordered (victim, aggressor)
    pair, both fabrics side by side, points fanned through the
    executor (solo baselines dedupe across pairs via the cache)."""
    from repro.exec import Executor
    executor = executor or Executor()
    pairs = [(str(v), str(a)) for v, a in pairs]
    fabrics = tuple(fabrics)

    common = dict(nodes_per_tenant=int(nodes_per_tenant),
                  seed=int(seed), flow_impl=flow_impl,
                  ib_leaf_size=int(ib_leaf_size),
                  ib_uplinks=int(ib_uplinks))
    if workload_params:
        common["workload_params"] = {
            k: dict(v) for k, v in dict(workload_params).items()}

    victims = sorted({v for v, _ in pairs})
    grid = [dict(victim=v, aggressor=None, fabric=f, **common)
            for f in fabrics for v in victims]
    grid += [dict(victim=v, aggressor=a, fabric=f, **common)
             for f in fabrics for v, a in pairs]
    rows = executor.map(interference_point, grid,
                        name="tenancy.interference")
    by_key = {(r["victim"], r["aggressor"], r["fabric"]): r for r in rows}

    columns = ["victim", "aggressor"]
    for f in fabrics:
        columns += [f"{f}_solo_s", f"{f}_co_s", f"{f}_slowdown"]
    t = Table("fig_interference: co-scheduled slowdown "
              "(elapsed co / elapsed solo)", columns)
    for v, a in pairs:
        cells: list = [v, a]
        for f in fabrics:
            solo = by_key[(v, "", f)]["elapsed_victim_s"]
            co = by_key[(v, a, f)]["elapsed_victim_s"]
            cells += [solo, co, co / solo]
        t.add_row(*cells)
    return t
