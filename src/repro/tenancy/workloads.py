"""Tenant workload builders.

Each builder mirrors the corresponding single-application entry point
(:func:`repro.kernels.gups.run_gups`, :func:`repro.kernels.bfs.run_bfs`
with one root, :func:`repro.kernels.fft1d.run_fft1d`,
:func:`repro.apps.snap.run_snap`) but splits it into the two halves the
co-scheduler needs: a rank ``program`` the shared engine can interleave
with other tenants', and a ``finish`` reduction turning the per-rank
values into the same metrics dict the standalone runner reports.  The
program bodies are the *unmodified* kernel generators, so a solo tenant
reproduces the legacy path event for event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional

import numpy as np

from repro.core.metrics import gflops_fft1d, harmonic_mean, mups, teps
from repro.sim.rng import rng_for
from repro.tenancy.spec import WORKLOADS, TenancyError

__all__ = ["TenantWorkload", "build_workload"]


@dataclass(frozen=True)
class TenantWorkload:
    """One tenant's runnable program plus its metrics reduction."""

    name: str
    program: Callable  # program(ctx) -> generator
    finish: Callable[[List[Dict[str, Any]]], Dict[str, Any]]


def build_workload(name: str, *, fabric: str, n_ranks: int, seed: int,
                   params: Optional[Mapping[str, Any]] = None,
                   traffic=None, agg_spec=None) -> TenantWorkload:
    """Build the named workload for one tenant's rank window."""
    if name not in WORKLOADS:
        raise TenancyError(
            f"unknown workload {name!r}; expected one of {WORKLOADS}")
    if fabric not in ("dv", "mpi"):
        raise TenancyError(f'fabric must be "dv" or "mpi", got {fabric!r}')
    builder = _BUILDERS[name]
    return builder(fabric=fabric, n_ranks=n_ranks, seed=seed,
                   traffic=traffic, agg_spec=agg_spec,
                   **dict(params or {}))


# ----------------------------------------------------------------- GUPS ---

def _build_gups(*, fabric: str, n_ranks: int, seed: int, traffic=None,
                agg_spec=None, table_words: int = 1 << 10,
                n_updates: Optional[int] = None, window: int = 256,
                aggregate: bool = True,
                validate: bool = False) -> TenantWorkload:
    from repro.kernels.gups import (_agg_gups, _dv_gups, _mpi_gups,
                                    serial_gups_table)
    if n_updates is None:
        n_updates = table_words
    if window < 1 or window > 1024:
        raise ValueError("HPCC rules: look-ahead window must be <= 1024")
    n_up = n_updates

    if agg_spec is not None:
        def program(ctx):
            return (yield from _agg_gups(ctx, table_words, n_up, window,
                                         seed, agg_spec, traffic))
    elif fabric == "dv":
        def program(ctx):
            return (yield from _dv_gups(ctx, table_words, n_up, window,
                                        seed, aggregate, traffic))
    else:
        def program(ctx):
            return (yield from _mpi_gups(ctx, table_words, n_up, window,
                                         seed, traffic))

    def finish(values: List[Dict[str, Any]]) -> Dict[str, Any]:
        elapsed = max(v["elapsed"] for v in values)
        total = n_up * n_ranks
        out: Dict[str, Any] = {
            "workload": "gups",
            "fabric": fabric,
            "n_ranks": n_ranks,
            "elapsed_s": elapsed,
            "mups_total": mups(total, elapsed),
            "mups_per_pe": mups(total, elapsed) / n_ranks,
        }
        if agg_spec is not None:
            from repro.agg.runtime import merge_stats
            out["agg"] = merge_stats(v["agg"] for v in values)
        if validate:
            got = np.concatenate([v["table"] for v in values])
            ref = serial_gups_table(seed, n_ranks, table_words, n_up,
                                    traffic)
            out["valid"] = bool(np.array_equal(got, ref))
        return out

    return TenantWorkload("gups", program, finish)


# ------------------------------------------------------------------ BFS ---

def _build_bfs(*, fabric: str, n_ranks: int, seed: int, traffic=None,
               agg_spec=None, scale: int = 8, edgefactor: int = 8,
               window: int = 256,
               validate: bool = False) -> TenantWorkload:
    from repro.kernels.bfs import (_NO_PARENT, _agg_bfs, _dv_bfs,
                                   _LocalGraph, _mpi_bfs,
                                   validate_parent_tree)
    from repro.kernels.kronecker import degrees, kronecker_edges, to_csr

    rng = rng_for(seed, "graph500", scale)
    edges = kronecker_edges(scale, edgefactor, rng)
    n = 1 << scale
    if traffic is not None:
        from repro.traffic.placement import skewed_relabel
        relabel = skewed_relabel(degrees(edges, n), n_ranks, traffic.dist)
        edges = relabel[edges]
    offsets, targets = to_csr(edges, n)
    deg = np.diff(offsets)
    candidates = np.flatnonzero(deg > 0)
    root = int(rng.choice(candidates, size=1, replace=False)[0])

    def program(ctx):
        g = _LocalGraph(offsets, targets, ctx.rank, ctx.size)
        yield from ctx.barrier()
        ctx.mark("t0")
        agg_stats = None
        if agg_spec is not None:
            traversed, agg_stats = yield from _agg_bfs(
                ctx, g, root, seed, agg_spec)
        elif fabric == "dv":
            traversed = yield from _dv_bfs(ctx, g, root, window)
        else:
            traversed = yield from _mpi_bfs(ctx, g, root)
        elapsed = ctx.since("t0")
        out = {"elapsed": elapsed, "traversed": traversed,
               "parent": g.parent}
        if agg_stats is not None:
            out["agg"] = agg_stats
        return out

    def finish(values: List[Dict[str, Any]]) -> Dict[str, Any]:
        elapsed = max(v["elapsed"] for v in values)
        parent = np.concatenate([v["parent"] for v in values])[:n]
        visited = parent != _NO_PARENT
        traversed = int(deg[visited].sum()) // 2
        root_teps = teps(max(traversed, 1), elapsed)
        out: Dict[str, Any] = {
            "workload": "bfs",
            "fabric": fabric,
            "n_ranks": n_ranks,
            "scale": scale,
            "elapsed_s": elapsed,
            "harmonic_teps": harmonic_mean([root_teps]),
            "gteps": root_teps / 1e9,
        }
        if agg_spec is not None:
            from repro.agg.runtime import merge_stats
            out["agg"] = merge_stats(v["agg"] for v in values)
        if validate:
            out["valid"] = bool(
                validate_parent_tree(offsets, targets, root, parent))
        return out

    return TenantWorkload("bfs", program, finish)


# ------------------------------------------------------------------ FFT ---

def _build_fft(*, fabric: str, n_ranks: int, seed: int, traffic=None,
               agg_spec=None, log2_points: int = 10,
               validate: bool = False) -> TenantWorkload:
    from repro.kernels.fft1d import (_fft_program, make_input,
                                     serial_fft_reference)
    if traffic is not None:
        raise TenancyError(
            "the FFT has a fixed all-to-all pattern; traffic models "
            "do not apply")
    if agg_spec is not None:
        raise TenancyError("aggregation does not apply to the FFT")
    P = n_ranks
    N = 1 << log2_points
    half = log2_points // 2
    n1, n2 = 1 << half, 1 << (log2_points - half)
    if n1 % P or n2 % P:
        raise ValueError(
            f"2^{half} and 2^{log2_points - half} must both be "
            f"divisible by n_ranks={P} (power-of-two rank counts only)")
    x = make_input(seed, N)

    def program(ctx):
        return (yield from _fft_program(ctx, x, n1, n2, fabric))

    def finish(values: List[Dict[str, Any]]) -> Dict[str, Any]:
        elapsed = max(v["elapsed"] for v in values)
        out: Dict[str, Any] = {
            "workload": "fft",
            "fabric": fabric,
            "n_ranks": P,
            "n_points": N,
            "elapsed_s": elapsed,
            "gflops": gflops_fft1d(N, elapsed),
        }
        if validate:
            C = np.concatenate([v["out"] for v in values], axis=1)
            X = np.ascontiguousarray(C).reshape(-1)
            ref = serial_fft_reference(x)
            out["valid"] = bool(np.allclose(X, ref, atol=1e-6 * N))
        return out

    return TenantWorkload("fft", program, finish)


# ------------------------------------------- SNAP-style transport scan ---

def _build_scan(*, fabric: str, n_ranks: int, seed: int, traffic=None,
                agg_spec=None, nx: int = 8, ny_per_rank: int = 2,
                nz: int = 8, n_angles: int = 8, chunk: int = 4,
                sigma: float = 1.0, dy: float = 0.1,
                validate: bool = False) -> TenantWorkload:
    from repro.apps.snap import (_snap_dv, _snap_mpi, angle_quadrature,
                                 serial_sweep)
    if traffic is not None:
        raise TenancyError(
            "the transport scan's neighbour pattern is mesh-derived; "
            "traffic models do not apply")
    if agg_spec is not None:
        raise TenancyError(
            "aggregation does not apply to the transport scan")
    P = n_ranks
    ny = ny_per_rank * P
    rng = np.random.default_rng(seed)
    source = rng.random((ny, nx, nz))
    quad = angle_quadrature(n_angles)

    def program(ctx):
        local = source[ctx.rank * ny_per_rank:
                       (ctx.rank + 1) * ny_per_rank].copy()
        if fabric == "dv":
            return (yield from _snap_dv(ctx, local, quad, sigma, dy,
                                        chunk))
        return (yield from _snap_mpi(ctx, local, quad, sigma, dy, chunk))

    def finish(values: List[Dict[str, Any]]) -> Dict[str, Any]:
        elapsed = max(v["elapsed"] for v in values)
        out: Dict[str, Any] = {
            "workload": "scan",
            "fabric": fabric,
            "n_ranks": P,
            "mesh": (nx, ny, nz),
            "n_angles": n_angles,
            "elapsed_s": elapsed,
            "cell_angle_sweeps_per_s":
                2 * nx * ny * nz * n_angles / elapsed,
        }
        if validate:
            phi = np.concatenate([v["phi"] for v in values], axis=0)
            ref = serial_sweep(source, quad, sigma, dy)
            out["valid"] = bool(np.allclose(phi, ref, atol=1e-12)
                                and np.all(phi >= 0))
        return out

    return TenantWorkload("scan", program, finish)


_BUILDERS = {
    "gups": _build_gups,
    "bfs": _build_bfs,
    "fft": _build_fft,
    "scan": _build_scan,
}
